//! The service's error type: every way a selection request can fail,
//! reported as a value — the request path never panics.

use jury_model::ModelError;
use jury_selection::SolveError;

use crate::response::MixedResponse;

/// Why a [`crate::SelectionRequest`] could not be served.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The candidate pool contained no workers.
    EmptyPool,
    /// The budget was not a finite, strictly positive number.
    InvalidBudget {
        /// The offending budget.
        value: f64,
    },
    /// No single worker is affordable, so every feasible jury is empty.
    /// Only reported when the request does not opt into empty selections
    /// (see [`crate::SelectionRequest::allow_empty_selection`]).
    BudgetBelowCheapestWorker {
        /// The requested budget.
        budget: f64,
        /// The cheapest worker's cost.
        cheapest: f64,
    },
    /// The prior `α` was not a probability in `[0, 1]`.
    InvalidPrior {
        /// The offending value.
        value: f64,
    },
    /// A categorical prior vector was invalid (not a distribution, or its
    /// label count does not match the pool's).
    InvalidPriorVector {
        /// Why the vector was rejected.
        reason: String,
    },
    /// A multi-class request needs the incremental engine (the pool is past
    /// both the session crossover and the exact-enumeration cutoff), but
    /// even a one-bucket-per-worker grid would overflow the configured
    /// dense-box cell budget. Raise
    /// [`crate::ServiceConfig::multiclass_incremental`]'s `max_cells`, or
    /// shrink the pool.
    MultiClassStateTooLarge {
        /// Cells the coarsest possible grid would need.
        cells: u64,
        /// The configured cell budget.
        max: u64,
    },
    /// The request demanded the exact solver on a pool too large to
    /// enumerate.
    PoolTooLargeForExact {
        /// Number of candidates in the pool.
        size: usize,
        /// Largest pool the exact solver accepts.
        max: usize,
    },
    /// A repair was requested for a selection id the drift detector does
    /// not track (never handed out, or already untracked).
    UntrackedJury {
        /// The raw ledger id (see `jury_stream::SelectionId`).
        id: u64,
    },
    /// A tracked jury can no longer be scored or repaired against the
    /// current registry snapshot — typically a member disappeared from the
    /// registry since the jury was handed out.
    StaleJury {
        /// The raw ledger id (see `jury_stream::SelectionId`).
        id: u64,
        /// Why the jury went stale.
        reason: String,
    },
    /// The request's deadline (or evaluation cap) expired before the search
    /// finished. The search stops at its next cooperative checkpoint and
    /// hands back the best feasible jury found so far — the **anytime**
    /// contract: the partial answer is a valid, budget-respecting selection,
    /// just not necessarily the one an uncut search would have returned.
    DeadlineExceeded {
        /// The best feasible response found before the cutoff, when the
        /// search got far enough to have one (boxed: a full response is
        /// much larger than the other variants).
        best_so_far: Option<Box<MixedResponse>>,
    },
    /// The admission gate rejected this request: the service was already
    /// serving [`crate::ServiceConfig::max_in_flight`] requests and the
    /// overload policy is [`crate::OverloadPolicy::Shed`]. Immediate and
    /// non-blocking — the caller can retry once load drains.
    Overloaded {
        /// Requests in flight when this one was rejected (this one
        /// included).
        in_flight: usize,
        /// The configured admission limit.
        max_in_flight: usize,
    },
    /// A service-internal invariant broke while serving the request — e.g.
    /// a solver panicked on a batch worker thread. The shared store is
    /// unaffected (its locks do not poison) and the service stays usable;
    /// the panic is reported as this value instead of unwinding the batch.
    Internal {
        /// What broke, for diagnostics.
        reason: String,
    },
    /// A lower-level model invariant was violated.
    Model(ModelError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::EmptyPool => write!(f, "candidate pool is empty"),
            ServiceError::InvalidBudget { value } => {
                write!(f, "budget {value} must be a finite, positive number")
            }
            ServiceError::BudgetBelowCheapestWorker { budget, cheapest } => write!(
                f,
                "budget {budget} cannot afford any worker (cheapest costs {cheapest})"
            ),
            ServiceError::InvalidPrior { value } => {
                write!(f, "prior {value} is not a probability in [0, 1]")
            }
            ServiceError::InvalidPriorVector { reason } => {
                write!(f, "invalid categorical prior: {reason}")
            }
            ServiceError::MultiClassStateTooLarge { cells, max } => write!(
                f,
                "multi-class incremental state needs at least {cells} cells, \
                 exceeding the configured budget of {max}"
            ),
            ServiceError::PoolTooLargeForExact { size, max } => write!(
                f,
                "exact solving is limited to {max} candidates, the pool has {size}"
            ),
            ServiceError::UntrackedJury { id } => {
                write!(f, "selection#{id} is not tracked by the drift detector")
            }
            ServiceError::StaleJury { id, reason } => {
                write!(f, "selection#{id} is stale: {reason}")
            }
            ServiceError::DeadlineExceeded { best_so_far } => write!(
                f,
                "deadline exceeded before the search finished ({} partial result)",
                if best_so_far.is_some() {
                    "with a"
                } else {
                    "no"
                }
            ),
            ServiceError::Overloaded {
                in_flight,
                max_in_flight,
            } => write!(
                f,
                "service overloaded: {in_flight} requests in flight, limit {max_in_flight}"
            ),
            ServiceError::Internal { reason } => {
                write!(f, "internal service error: {reason}")
            }
            ServiceError::Model(err) => write!(f, "model error: {err}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ModelError> for ServiceError {
    fn from(err: ModelError) -> Self {
        match err {
            ModelError::InvalidCost { value } => ServiceError::InvalidBudget { value },
            ModelError::InvalidPrior { value } => ServiceError::InvalidPrior { value },
            ModelError::InvalidPriorVector { reason } => {
                ServiceError::InvalidPriorVector { reason }
            }
            other => ServiceError::Model(other),
        }
    }
}

impl From<SolveError> for ServiceError {
    fn from(err: SolveError) -> Self {
        match err {
            SolveError::PoolTooLarge { size, max } => {
                ServiceError::PoolTooLargeForExact { size, max }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ServiceError, &str)> = vec![
            (ServiceError::EmptyPool, "empty"),
            (ServiceError::InvalidBudget { value: -1.0 }, "budget"),
            (
                ServiceError::BudgetBelowCheapestWorker {
                    budget: 1.0,
                    cheapest: 2.0,
                },
                "cheapest",
            ),
            (ServiceError::InvalidPrior { value: 1.5 }, "prior"),
            (
                ServiceError::InvalidPriorVector {
                    reason: "3 classes vs 4".into(),
                },
                "categorical",
            ),
            (
                ServiceError::MultiClassStateTooLarge {
                    cells: 1 << 30,
                    max: 1 << 20,
                },
                "cells",
            ),
            (
                ServiceError::PoolTooLargeForExact { size: 30, max: 22 },
                "exact",
            ),
            (ServiceError::UntrackedJury { id: 4 }, "not tracked"),
            (
                ServiceError::StaleJury {
                    id: 4,
                    reason: "worker 7 left the registry".into(),
                },
                "stale",
            ),
            (
                ServiceError::DeadlineExceeded { best_so_far: None },
                "deadline",
            ),
            (
                ServiceError::Overloaded {
                    in_flight: 5,
                    max_in_flight: 4,
                },
                "overloaded",
            ),
            (
                ServiceError::Internal {
                    reason: "worker thread panicked".into(),
                },
                "internal",
            ),
            (
                ServiceError::Model(ModelError::Empty { what: "jury" }),
                "model error",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn conversions_map_to_specific_variants() {
        assert_eq!(
            ServiceError::from(ModelError::InvalidCost { value: -2.0 }),
            ServiceError::InvalidBudget { value: -2.0 }
        );
        assert_eq!(
            ServiceError::from(ModelError::InvalidPrior { value: 2.0 }),
            ServiceError::InvalidPrior { value: 2.0 }
        );
        assert_eq!(
            ServiceError::from(SolveError::PoolTooLarge { size: 30, max: 22 }),
            ServiceError::PoolTooLargeForExact { size: 30, max: 22 }
        );
        assert!(matches!(
            ServiceError::from(ModelError::Empty { what: "pool" }),
            ServiceError::Model(_)
        ));
        assert!(matches!(
            ServiceError::from(ModelError::InvalidPriorVector {
                reason: "mismatch".into()
            }),
            ServiceError::InvalidPriorVector { .. }
        ));
    }

    #[test]
    fn model_errors_expose_a_source() {
        use std::error::Error;
        let err = ServiceError::Model(ModelError::Empty { what: "pool" });
        assert!(err.source().is_some());
        assert!(ServiceError::EmptyPool.source().is_none());
    }
}
