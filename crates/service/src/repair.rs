//! The online serving loop's repair endpoints: re-score handed-out juries
//! against fresh streaming estimates, scan the drift ledger, and patch the
//! juries that drifted.
//!
//! The flow closes the loop the one-shot paper pipeline leaves open:
//!
//! 1. answers stream into a [`jury_stream::WorkerRegistry`], moving the
//!    worker estimates;
//! 2. [`JuryService::drift_scan`] re-scores every selection tracked by a
//!    [`jury_stream::DriftDetector`] against a fresh registry snapshot,
//!    through the service's shared signature-keyed JQ cache (so scanning
//!    many juries over one snapshot shares evaluations);
//! 3. [`JuryService::repair`] patches a flagged jury in place with the
//!    incremental swap search (`jury_selection::repair_jury`) under the
//!    selection's original budget, falling back to a cold re-solve only
//!    when the greedy patch stays stuck below the drift threshold — and
//!    commits the result back to the detector ledger as the new baseline.

use std::time::{Duration, Instant};

use jury_model::{Jury, Prior, WorkerId, WorkerPool};
use jury_selection::{repair_jury, JspInstance, JuryObjective, RepairConfig, SearchBudget};
use jury_stream::{DriftDetector, DriftReport, SelectionId, WorkerRegistry};

use crate::cache::CachedObjective;
use crate::error::ServiceError;
use crate::request::{SolverPolicy, Strategy};
use crate::response::{RepairOutcome, RepairResponse};
use crate::service::JuryService;

/// Margin by which a cold re-solve must beat the patched jury before the
/// repair abandons the patch for the re-solved jury (mirrors the repair
/// search's own probe tolerance).
const RESOLVE_MARGIN: f64 = 1e-9;

impl JuryService {
    /// Scores a jury drawn from `pool` by member ids under the service's
    /// `JQ(BV)` engine and shared cache — the primitive behind drift scans.
    ///
    /// # Errors
    ///
    /// Any id missing from the pool surfaces as
    /// [`ServiceError::Model`] (`UnknownWorker`).
    pub fn rescore(
        &self,
        pool: &WorkerPool,
        members: &[WorkerId],
        prior: Prior,
    ) -> Result<f64, ServiceError> {
        let jury = Jury::from_pool(pool, members)?;
        let objective =
            CachedObjective::new(self.config().jq_engine(), Strategy::Bv, self.jq_cache());
        Ok(objective.evaluate(&jury, prior))
    }

    /// Re-scores every selection tracked by `detector` against a fresh
    /// snapshot of `registry` and reports each against the detector's drift
    /// threshold, in ledger order. Selections whose members are gone from
    /// the registry come back [`jury_stream::DriftStatus::Stale`]; the
    /// ledger itself is not mutated (repairs commit new baselines).
    ///
    /// The scan is **incremental**: a selection none of whose members'
    /// posteriors changed since its baseline epoch
    /// ([`WorkerRegistry::last_update_epoch`]) is reported at its baseline
    /// quality without a JQ evaluation — exact, not an approximation, since
    /// scoring is deterministic in the member posteriors. The selections
    /// that do need scoring all score against the *same* snapshot through
    /// the shared JQ cache, so overlapping juries share evaluations.
    pub fn drift_scan(
        &self,
        registry: &WorkerRegistry,
        detector: &DriftDetector,
    ) -> Result<Vec<DriftReport>, ServiceError> {
        if registry.is_empty() {
            // No snapshot to score against: every tracked jury is stale.
            return Ok(detector.scan_with(|_, _| None));
        }
        let snapshot = registry.snapshot_pool()?;
        let objective =
            CachedObjective::new(self.config().jq_engine(), Strategy::Bv, self.jq_cache());
        Ok(detector.scan_with(|_, selection| {
            // A member missing from the registry must fall through to the
            // scoring path so the report comes back `Stale`, not skipped.
            let unchanged = selection.members().iter().all(|&id| {
                matches!(registry.last_update_epoch(id),
                    Some(updated) if updated <= selection.epoch())
            });
            if unchanged {
                return Some(selection.baseline_quality());
            }
            let jury = Jury::from_pool(&snapshot, selection.members()).ok()?;
            Some(objective.evaluate(&jury, selection.prior()))
        }))
    }

    /// Repairs one tracked selection against fresh registry estimates and
    /// commits the outcome back to the detector ledger as the selection's
    /// new baseline (members, quality, and registry epoch).
    ///
    /// The repair keeps the selection's original budget and prior. When the
    /// fresh quality is still within the detector's threshold of the
    /// baseline the jury is left alone ([`RepairOutcome::Unchanged`]);
    /// otherwise the incremental swap search patches it in place
    /// ([`RepairOutcome::Patched`]), and only when the patch stays stuck
    /// below the threshold is the instance re-solved cold — the re-solve is
    /// kept only if it strictly beats the patch
    /// ([`RepairOutcome::Resolved`]).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UntrackedJury`] when `id` is not in the ledger;
    /// [`ServiceError::StaleJury`] when a member has disappeared from the
    /// registry since the jury was handed out.
    pub fn repair(
        &self,
        registry: &WorkerRegistry,
        detector: &mut DriftDetector,
        id: SelectionId,
    ) -> Result<RepairResponse, ServiceError> {
        let response = self.compute_repair(registry, detector, id, SearchBudget::unlimited())?;
        detector.rebaseline(id, response.jury.ids(), response.quality, response.epoch);
        Ok(response)
    }

    /// [`Self::repair`] under a wall-clock deadline, polled between repair
    /// rounds and inside the cold re-solve fallback.
    ///
    /// A repair that runs out of time is **not** an error: the swap search
    /// only ever commits improving moves, so whatever it holds when the
    /// deadline fires is a valid jury no worse than the pre-repair state.
    /// That anytime patch is committed to the ledger exactly like a full
    /// repair, with [`RepairResponse::truncated`] set so the caller knows
    /// further improvements may remain.
    ///
    /// One exception keeps retries meaningful: a truncated repair that
    /// changed **nothing** does not touch the ledger. Rebaselining a no-op
    /// to the degraded quality would absorb the drift and make every later
    /// [`Self::repair`] see a steady jury — the deadline would silently
    /// cancel the repair forever instead of postponing it.
    pub fn repair_with_deadline(
        &self,
        registry: &WorkerRegistry,
        detector: &mut DriftDetector,
        id: SelectionId,
        deadline: Duration,
    ) -> Result<RepairResponse, ServiceError> {
        let budget = SearchBudget::unlimited().with_deadline_in(deadline);
        let response = self.compute_repair(registry, detector, id, budget)?;
        if response.changed() || !response.truncated {
            detector.rebaseline(id, response.jury.ids(), response.quality, response.epoch);
        }
        Ok(response)
    }

    /// Repairs many tracked selections in one call: the repair computations
    /// run data-parallel on the batch engine (they only read the ledger),
    /// then the new baselines are committed sequentially. Failures are
    /// per-selection, in input order, exactly like
    /// [`select_batch`](Self::select_batch).
    pub fn repair_batch(
        &self,
        registry: &WorkerRegistry,
        detector: &mut DriftDetector,
        ids: &[SelectionId],
    ) -> Vec<Result<RepairResponse, ServiceError>> {
        let computed = {
            let detector: &DriftDetector = detector;
            self.run_batch(ids, |&id| {
                self.compute_repair(registry, detector, id, SearchBudget::unlimited())
            })
        };
        for response in computed.iter().flatten() {
            detector.rebaseline(
                response.id,
                response.jury.ids(),
                response.quality,
                response.epoch,
            );
        }
        computed
    }

    /// The immutable repair computation shared by [`Self::repair`] and
    /// [`Self::repair_batch`] — everything except the ledger commit.
    fn compute_repair(
        &self,
        registry: &WorkerRegistry,
        detector: &DriftDetector,
        id: SelectionId,
        search_budget: SearchBudget,
    ) -> Result<RepairResponse, ServiceError> {
        let started = Instant::now();
        let tracked = detector
            .get(id)
            .ok_or(ServiceError::UntrackedJury { id: id.raw() })?;
        if registry.is_empty() {
            return Err(ServiceError::StaleJury {
                id: id.raw(),
                reason: "the registry has no workers to snapshot".into(),
            });
        }
        let snapshot = registry.snapshot_pool()?;
        let jury = Jury::from_pool(&snapshot, tracked.members()).map_err(|err| {
            ServiceError::StaleJury {
                id: id.raw(),
                reason: err.to_string(),
            }
        })?;
        let epoch = registry.epoch();
        let objective =
            CachedObjective::new(self.config().jq_engine(), Strategy::Bv, self.jq_cache());
        let fresh = objective.evaluate(&jury, tracked.prior());
        let baseline = tracked.baseline_quality();
        if (fresh - baseline).abs() <= detector.threshold() {
            return Ok(RepairResponse {
                id,
                outcome: RepairOutcome::Unchanged,
                quality: fresh,
                previous_baseline: baseline,
                cost: jury.cost(),
                jury,
                epoch,
                evaluations: objective.evaluations(),
                cache_hits: objective.local_hits(),
                truncated: false,
                elapsed: started.elapsed(),
            });
        }

        let instance = JspInstance::new(snapshot, tracked.budget(), tracked.prior())?;
        let patched = repair_jury(
            &objective,
            &instance,
            tracked.members(),
            RepairConfig::default().with_budget(search_budget),
        )?;
        let mut truncated = patched.truncated;
        let mut best_jury = patched.jury;
        let mut best_quality = patched.objective_value;
        let mut outcome = if patched.swaps + patched.pushes > 0 {
            RepairOutcome::Patched {
                swaps: patched.swaps,
                pushes: patched.pushes,
            }
        } else {
            RepairOutcome::Unchanged
        };
        // The greedy patch can land in a local optimum while the jury is
        // still degraded past the threshold; only then pay for a cold
        // re-solve, and only keep it when it genuinely beats the patch.
        // A truncated patch skips the fallback: the deadline already fired,
        // and the anytime contract hands back the patch as-is.
        if !truncated && baseline - best_quality > detector.threshold() {
            let resolved = self.dispatch_solver(
                &instance,
                &objective,
                SolverPolicy::Auto,
                false,
                self.config(),
                search_budget,
            )?;
            truncated = resolved.truncated;
            if resolved.objective_value > best_quality + RESOLVE_MARGIN {
                best_jury = resolved.jury;
                best_quality = resolved.objective_value;
                outcome = RepairOutcome::Resolved;
            }
        }
        Ok(RepairResponse {
            id,
            outcome,
            quality: best_quality,
            previous_baseline: baseline,
            cost: best_jury.cost(),
            jury: best_jury,
            epoch,
            evaluations: objective.evaluations(),
            cache_hits: objective.local_hits(),
            truncated,
            elapsed: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{Answer, TaskId};
    use jury_stream::{AnswerEvent, DriftStatus, RegistryConfig};

    use crate::config::ServiceConfig;
    use crate::request::SelectionRequest;

    /// A registry of six unit-cost workers warm-started at two quality
    /// tiers, pinned with 100 pseudo-observations each. The tiers are close
    /// enough that no single worker's log-odds weight dominates a
    /// three-member Bayesian vote — a degraded member genuinely costs JQ,
    /// so a swap genuinely recovers it.
    fn seeded_registry() -> WorkerRegistry {
        let mut registry = WorkerRegistry::new(RegistryConfig::default()).unwrap();
        for (w, quality) in [0.8, 0.8, 0.8, 0.75, 0.75, 0.75].into_iter().enumerate() {
            registry
                .register_with_quality(WorkerId(w as u32), quality, 100.0, 1.0)
                .unwrap();
        }
        registry
    }

    /// Selects under budget 3 on the registry snapshot and tracks the jury.
    fn select_and_track(
        service: &JuryService,
        registry: &WorkerRegistry,
        detector: &mut DriftDetector,
    ) -> SelectionId {
        let snapshot = registry.snapshot_pool().unwrap();
        let response = service
            .select(&SelectionRequest::new(snapshot, 3.0).with_prior(Prior::uniform()))
            .unwrap();
        detector.track(
            response.jury.ids(),
            3.0,
            Prior::uniform(),
            response.quality,
            registry.epoch(),
        )
    }

    /// Feeds `count` wrong golden answers, dragging the worker's estimate
    /// down. Note that under Bayesian voting a worker far *below* 0.5 is
    /// still informative (the vote is flipped), so tests degrade toward
    /// 0.5 — the genuinely useless point: the seeded worker 1 holds Beta
    /// counts (81, 21), so 60 wrong answers land it at exactly 0.5.
    fn degrade(registry: &mut WorkerRegistry, worker: WorkerId, count: u64) {
        for t in 0..count {
            registry
                .observe(AnswerEvent::golden(
                    worker,
                    TaskId(t),
                    Answer::No,
                    Answer::Yes,
                ))
                .unwrap();
        }
    }

    #[test]
    fn rescore_matches_the_select_quality() {
        let service = JuryService::new(ServiceConfig::fast());
        let registry = seeded_registry();
        let snapshot = registry.snapshot_pool().unwrap();
        let response = service
            .select(&SelectionRequest::new(snapshot.clone(), 3.0).with_prior(Prior::uniform()))
            .unwrap();
        let rescored = service
            .rescore(&snapshot, &response.jury.ids(), Prior::uniform())
            .unwrap();
        assert!((rescored - response.quality).abs() < 1e-12);
        // Unknown members are a typed model error.
        let err = service
            .rescore(&snapshot, &[WorkerId(42)], Prior::uniform())
            .unwrap_err();
        assert!(matches!(err, ServiceError::Model(_)));
    }

    #[test]
    fn drift_scan_is_steady_until_estimates_move() {
        let service = JuryService::new(ServiceConfig::fast());
        let mut registry = seeded_registry();
        let mut detector = DriftDetector::new(0.02);
        let id = select_and_track(&service, &registry, &mut detector);

        let reports = service.drift_scan(&registry, &detector).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].status, DriftStatus::Steady);

        degrade(&mut registry, WorkerId(1), 60);
        let reports = service.drift_scan(&registry, &detector).unwrap();
        assert_eq!(reports[0].id, id);
        assert_eq!(reports[0].status, DriftStatus::Drifted);
        assert!(reports[0].drift < -0.02);
    }

    #[test]
    fn drift_scan_skips_selections_whose_members_did_not_move() {
        let service = JuryService::new(ServiceConfig::fast());
        let mut registry = seeded_registry();
        let mut detector = DriftDetector::new(0.02);
        let id = select_and_track(&service, &registry, &mut detector);
        let members = detector.get(id).unwrap().members().to_vec();
        let baseline = detector.get(id).unwrap().baseline_quality();

        // Degrade a worker *outside* the jury: the registry's global epoch
        // moves, the members' own posteriors do not.
        let outside = (0..6)
            .map(WorkerId)
            .find(|w| !members.contains(w))
            .expect("budget 3 of 6 workers leaves someone out");
        degrade(&mut registry, outside, 10);
        assert!(registry.epoch() > detector.get(id).unwrap().epoch());

        let before = service.cache_stats();
        let reports = service.drift_scan(&registry, &detector).unwrap();
        let after = service.cache_stats();
        assert_eq!(reports[0].status, DriftStatus::Steady);
        assert_eq!(reports[0].fresh, Some(baseline), "baseline verbatim");
        assert_eq!(reports[0].drift, 0.0);
        // The skip is free: no JQ evaluation, not even a cache lookup.
        assert_eq!(
            after.hits + after.misses,
            before.hits + before.misses,
            "an epoch-skipped selection must not touch the JQ store"
        );

        // Once a member itself moves, the scan re-scores for real.
        degrade(&mut registry, members[0], 60);
        let reports = service.drift_scan(&registry, &detector).unwrap();
        assert_eq!(reports[0].status, DriftStatus::Drifted);
        let rescanned = service.cache_stats();
        assert!(
            rescanned.hits + rescanned.misses > after.hits + after.misses,
            "a moved member must force a real evaluation"
        );
    }

    #[test]
    fn drift_scan_marks_vanished_members_stale() {
        let service = JuryService::new(ServiceConfig::fast());
        let registry = seeded_registry();
        let mut detector = DriftDetector::new(0.02);
        detector.track(vec![WorkerId(77)], 2.0, Prior::uniform(), 0.9, 0);
        let reports = service.drift_scan(&registry, &detector).unwrap();
        assert_eq!(reports[0].status, DriftStatus::Stale);

        // An empty registry stales everything instead of erroring.
        let empty = WorkerRegistry::new(RegistryConfig::default()).unwrap();
        let reports = service.drift_scan(&empty, &detector).unwrap();
        assert_eq!(reports[0].status, DriftStatus::Stale);
    }

    #[test]
    fn repair_reports_untracked_and_stale_juries() {
        let service = JuryService::new(ServiceConfig::fast());
        let registry = seeded_registry();
        let mut detector = DriftDetector::new(0.02);
        let err = service
            .repair(&registry, &mut detector, SelectionId(9))
            .unwrap_err();
        assert_eq!(err, ServiceError::UntrackedJury { id: 9 });

        let id = detector.track(vec![WorkerId(77)], 2.0, Prior::uniform(), 0.9, 0);
        let err = service.repair(&registry, &mut detector, id).unwrap_err();
        assert!(matches!(err, ServiceError::StaleJury { .. }));

        let empty = WorkerRegistry::new(RegistryConfig::default()).unwrap();
        let err = service.repair(&empty, &mut detector, id).unwrap_err();
        assert!(matches!(err, ServiceError::StaleJury { .. }));
    }

    #[test]
    fn drift_free_juries_come_back_unchanged() {
        let service = JuryService::new(ServiceConfig::fast());
        let registry = seeded_registry();
        let mut detector = DriftDetector::new(0.02);
        let id = select_and_track(&service, &registry, &mut detector);
        let members = detector.get(id).unwrap().members().to_vec();

        let response = service.repair(&registry, &mut detector, id).unwrap();
        assert_eq!(response.outcome, RepairOutcome::Unchanged);
        assert!(!response.changed());
        assert_eq!(response.jury.ids(), members);
        // The ledger is re-validated at the current epoch.
        assert_eq!(detector.get(id).unwrap().epoch(), registry.epoch());
    }

    #[test]
    fn repair_swaps_out_a_degraded_member_and_matches_a_cold_resolve() {
        let service = JuryService::new(ServiceConfig::fast());
        let mut registry = seeded_registry();
        let mut detector = DriftDetector::new(0.02);
        let id = select_and_track(&service, &registry, &mut detector);
        assert!(detector.get(id).unwrap().members().contains(&WorkerId(1)));

        degrade(&mut registry, WorkerId(1), 60);
        let response = service.repair(&registry, &mut detector, id).unwrap();
        assert!(response.changed(), "outcome was {:?}", response.outcome);
        assert!(!response.jury.contains(WorkerId(1)));
        assert!(response.cost <= 3.0 + 1e-9);

        // The patched jury must match a cold re-solve on the fresh snapshot.
        let cold = service
            .select(
                &SelectionRequest::new(registry.snapshot_pool().unwrap(), 3.0)
                    .with_prior(Prior::uniform()),
            )
            .unwrap();
        assert!(
            (response.quality - cold.quality).abs() < 1e-9,
            "repaired {} vs cold {}",
            response.quality,
            cold.quality
        );

        // The ledger committed the repaired members and quality.
        let tracked = detector.get(id).unwrap();
        assert_eq!(tracked.members(), response.jury.ids());
        assert!((tracked.baseline_quality() - response.quality).abs() < 1e-12);
        assert_eq!(tracked.epoch(), registry.epoch());

        // A follow-up scan sees the repaired jury as steady again.
        let reports = service.drift_scan(&registry, &detector).unwrap();
        assert_eq!(reports[0].status, DriftStatus::Steady);
    }

    #[test]
    fn repair_batch_commits_every_successful_slot() {
        let service = JuryService::new(ServiceConfig::fast());
        let mut registry = seeded_registry();
        let mut detector = DriftDetector::new(0.02);
        let first = select_and_track(&service, &registry, &mut detector);
        let second = select_and_track(&service, &registry, &mut detector);

        degrade(&mut registry, WorkerId(1), 60);
        let results =
            service.repair_batch(&registry, &mut detector, &[first, SelectionId(99), second]);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(ServiceError::UntrackedJury { id: 99 }));
        assert!(results[2].is_ok());
        for (id, result) in [(first, &results[0]), (second, &results[2])] {
            let response = result.as_ref().unwrap();
            let tracked = detector.get(id).unwrap();
            assert_eq!(tracked.members(), response.jury.ids());
            assert_eq!(tracked.epoch(), registry.epoch());
        }
    }
}
