//! The shared, memoizing JQ-evaluation cache and the cache-backed
//! objectives.
//!
//! JSP searches spend essentially all their time evaluating `JQ(J, S, α)`,
//! and across a batch of requests over overlapping pools the same
//! `(jury-quality multiset, prior, strategy)` evaluation recurs constantly —
//! every budget point of a budget–quality sweep re-examines mostly the same
//! juries. The cache keys evaluations by the quantized
//! [`jury_signature`] (sound: JQ depends only on the quality multiset and
//! the prior; see `jury_jq::signature`) plus the strategy.
//!
//! The store is **striped into shards**: each key hashes deterministically
//! to one shard, and each shard owns its own `parking_lot`-guarded map,
//! segmented-LRU budget, and hit/miss/eviction counters. Worker threads of
//! a batch that touch different keys therefore take different locks — the
//! single shared lock this replaces was the serving-side bottleneck under
//! 8-thread mixed traffic (see `perf_smoke`'s contention scenario).
//! `JqCache::stats` aggregates across shards for existing callers;
//! `JqCache::shard_stats` exposes the per-shard view.
//!
//! Multi-class (confusion-matrix) evaluations live in the **same store**,
//! keyed by [`multiclass_signature`] — a quantized matrix digest whose key
//! space is disjoint from the binary signatures by construction — so one
//! segmented-LRU budget covers a mixed binary/multi-class workload and hot
//! entries of either kind compete fairly for residency. [`CacheStats`]
//! reports hits and misses per kind on top of the combined totals.
//!
//! The cache is the *outer* memoization layer; underneath it the objectives
//! also hand the solvers incremental push/pop/swap sessions
//! (`jury_jq::IncrementalJq` / `IncrementalMvJq` /
//! `IncrementalMultiClassJq`), so the inner search loop of annealing and
//! marginal greedy never pays a from-scratch JQ computation either — batch
//! memoization outside, incremental updates inside.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use jury_jq::{jury_signature, multiclass_signature, JqEngine, JurySignature, SharedJqScratch};
use jury_model::{CategoricalPrior, Jury, MatrixPool, MatrixWorker, ModelResult, Prior};
use jury_selection::{
    bv_incremental_session_in, mv_incremental_session_in, IncrementalSession, JspInstance,
    JuryObjective, MultiClassBvObjective,
};

use crate::config::ServiceConfig;
use crate::request::Strategy;

/// Which key space a cache access belongs to, for per-kind accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CacheKind {
    /// Binary-accuracy evaluations keyed by [`jury_signature`].
    Binary,
    /// Confusion-matrix evaluations keyed by [`multiclass_signature`].
    MultiClass,
}

/// Hit/miss counters of one key kind within the shared store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheKindStats {
    /// Lifetime lookups of this kind served from the cache.
    pub hits: u64,
    /// Lifetime lookups of this kind that had to compute the value.
    pub misses: u64,
}

/// A point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently stored (all kinds).
    pub entries: usize,
    /// Lifetime lookups served from the cache (all kinds).
    pub hits: u64,
    /// Lifetime lookups that had to compute the value (all kinds).
    pub misses: u64,
    /// Lifetime entries dropped by the segmented-LRU eviction.
    pub evictions: u64,
    /// Counters of the binary-accuracy entries.
    pub binary: CacheKindStats,
    /// Counters of the multi-class (confusion-matrix) entries.
    pub multiclass: CacheKindStats,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CacheKey {
    /// A binary-accuracy evaluation. The engine fingerprint (bucket
    /// settings, exact cutoff) is part of the key: JQ values computed under
    /// different configurations are different numbers, and per-request
    /// config overrides share this cache.
    Binary {
        strategy: Strategy,
        bucket: jury_jq::BucketJqConfig,
        exact_cutoff: usize,
        signature: JurySignature,
    },
    /// A multi-class BV evaluation. The scratch bucket resolution and the
    /// exact-enumeration voting cutoff are the engine fingerprint here (the
    /// incremental config only steers searches, never reported values).
    MultiClass {
        num_buckets: usize,
        exact_votings: u64,
        signature: JurySignature,
    },
}

/// One memoized evaluation: the value plus a last-used stamp, bumped on
/// every hit (atomically, so hits only ever take the read lock).
#[derive(Debug)]
struct CacheEntry {
    value: f64,
    last_used: AtomicU64,
}

/// One stripe of the sharded store: its own map, lock, and counters.
#[derive(Debug)]
struct Shard {
    map: RwLock<HashMap<CacheKey, CacheEntry>>,
    binary_hits: AtomicU64,
    binary_misses: AtomicU64,
    multiclass_hits: AtomicU64,
    multiclass_misses: AtomicU64,
    evictions: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: RwLock::new(HashMap::new()),
            binary_hits: AtomicU64::new(0),
            binary_misses: AtomicU64::new(0),
            multiclass_hits: AtomicU64::new(0),
            multiclass_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn counters(&self, kind: CacheKind) -> (&AtomicU64, &AtomicU64) {
        match kind {
            CacheKind::Binary => (&self.binary_hits, &self.binary_misses),
            CacheKind::MultiClass => (&self.multiclass_hits, &self.multiclass_misses),
        }
    }

    fn stats(&self) -> CacheStats {
        let binary = CacheKindStats {
            hits: self.binary_hits.load(Ordering::Relaxed),
            misses: self.binary_misses.load(Ordering::Relaxed),
        };
        let multiclass = CacheKindStats {
            hits: self.multiclass_hits.load(Ordering::Relaxed),
            misses: self.multiclass_misses.load(Ordering::Relaxed),
        };
        CacheStats {
            entries: self.map.read().len(),
            hits: binary.hits + multiclass.hits,
            misses: binary.misses + multiclass.misses,
            evictions: self.evictions.load(Ordering::Relaxed),
            binary,
            multiclass,
        }
    }
}

/// The shared evaluation cache. One per [`crate::JuryService`]; it outlives
/// individual requests, so repeated and batched calls keep re-using it.
///
/// The store is striped into shards (see the module docs): each key hashes
/// deterministically to one shard via `DefaultHasher`, so a given signature
/// always lands on — and evicts within — the same stripe. The configured
/// capacity is split evenly across shards (rounded up, so `capacity ≥ 1`
/// always leaves every shard at least one slot).
///
/// Overflow is handled per shard by **segmented LRU eviction**: when an
/// insert finds its shard full, the stalest half of that shard's entries
/// (by last-used stamp) is dropped in one sweep. Hot entries — the ones
/// batches and sweeps keep re-reading — survive, unlike the wholesale
/// `clear()` this replaces, while the half-at-a-time segmentation keeps the
/// amortized bookkeeping cost per insert `O(1)` (a full LRU list would pay
/// pointer churn on every hit). Binary and multi-class entries share each
/// shard's capacity and eviction sweep; eviction pressure on one shard
/// never touches entries on another.
#[derive(Debug)]
pub(crate) struct JqCache {
    capacity_per_shard: usize,
    shards: Box<[Shard]>,
    /// Monotonic logical clock handing out last-used stamps; shared across
    /// shards so stamps stay globally comparable in diagnostics.
    tick: AtomicU64,
}

impl JqCache {
    /// Creates a store of `shards` stripes sharing `capacity` entries.
    /// `capacity == 0` disables caching entirely; a shard count of 0 is
    /// promoted to 1 (a single-lock store).
    pub(crate) fn new(capacity: usize, shards: usize) -> Self {
        let num_shards = shards.max(1);
        JqCache {
            capacity_per_shard: capacity.div_ceil(num_shards),
            shards: (0..num_shards).map(|_| Shard::new()).collect(),
            tick: AtomicU64::new(0),
        }
    }

    /// The number of stripes (always at least 1).
    pub(crate) fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic key→shard routing: `DefaultHasher` is keyed with
    /// constants, so the same key maps to the same shard in every process.
    fn shard_for(&self, key: &CacheKey) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    fn get(&self, key: &CacheKey, kind: CacheKind) -> Option<f64> {
        if self.capacity_per_shard == 0 {
            return None;
        }
        let shard = &self.shards[self.shard_for(key)];
        let (hits, misses) = shard.counters(kind);
        let map = shard.map.read();
        match map.get(key) {
            Some(entry) => {
                entry
                    .last_used
                    .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value)
            }
            None => {
                misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: CacheKey, value: f64) {
        if self.capacity_per_shard == 0 {
            return;
        }
        let shard = &self.shards[self.shard_for(&key)];
        let mut map = shard.map.write();
        if map.len() >= self.capacity_per_shard && !map.contains_key(&key) {
            // Evict the stalest segment: everything at or below the median
            // last-used stamp. Stamps are unique (every hit and insert draws
            // a fresh tick), so this removes exactly `len − keep` entries.
            let keep = self.capacity_per_shard / 2;
            let mut stamps: Vec<u64> = map
                .values()
                .map(|entry| entry.last_used.load(Ordering::Relaxed))
                .collect();
            let evict = stamps.len() - keep;
            let (_, cutoff, _) = stamps.select_nth_unstable(evict - 1);
            let cutoff = *cutoff;
            map.retain(|_, entry| entry.last_used.load(Ordering::Relaxed) > cutoff);
            shard.evictions.fetch_add(evict as u64, Ordering::Relaxed);
        }
        map.insert(
            key,
            CacheEntry {
                value,
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
            },
        );
    }

    /// The aggregated view over all shards — what existing callers see.
    pub(crate) fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            let stats = shard.stats();
            total.entries += stats.entries;
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.evictions += stats.evictions;
            total.binary.hits += stats.binary.hits;
            total.binary.misses += stats.binary.misses;
            total.multiclass.hits += stats.multiclass.hits;
            total.multiclass.misses += stats.multiclass.misses;
        }
        total
    }

    /// Per-shard counter snapshots, in shard order.
    pub(crate) fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(Shard::stats).collect()
    }
}

/// The service's unified binary objective: one implementation of
/// [`JuryObjective`] covering both strategies, with every evaluation routed
/// through the shared cache. This is what replaces the separate
/// `Optjs`/`Mvjs` engines of the old system layer — the solvers are generic
/// over the objective, so a strategy is now just a field, not a type.
pub(crate) struct CachedObjective<'a> {
    engine: JqEngine,
    strategy: Strategy,
    cache: &'a JqCache,
    requests: AtomicU64,
    local_hits: AtomicU64,
    scratch: SharedJqScratch,
}

impl<'a> CachedObjective<'a> {
    pub(crate) fn new(engine: JqEngine, strategy: Strategy, cache: &'a JqCache) -> Self {
        CachedObjective {
            engine,
            strategy,
            cache,
            requests: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
            scratch: SharedJqScratch::new(),
        }
    }

    /// Cache hits observed by this objective instance (i.e. this solve).
    pub(crate) fn local_hits(&self) -> u64 {
        self.local_hits.load(Ordering::Relaxed)
    }

    fn compute(&self, jury: &Jury, prior: Prior) -> f64 {
        match self.strategy {
            Strategy::Bv => self.engine.bv_jq(jury, prior).value,
            Strategy::Mv => self.engine.mv_jq(jury, prior).value,
        }
    }
}

impl JuryObjective for CachedObjective<'_> {
    fn name(&self) -> &'static str {
        match self.strategy {
            Strategy::Bv => "JQ(BV)",
            Strategy::Mv => "JQ(MV)",
        }
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let key = CacheKey::Binary {
            strategy: self.strategy,
            bucket: *self.engine.bucket_estimator().config(),
            exact_cutoff: self.engine.exact_cutoff(),
            signature: jury_signature(jury, prior),
        };
        if let Some(value) = self.cache.get(&key, CacheKind::Binary) {
            self.local_hits.fetch_add(1, Ordering::Relaxed);
            return value;
        }
        // Concurrent threads may compute the same value twice; the insert is
        // idempotent, so that only costs time, never correctness.
        let value = self.compute(jury, prior);
        self.cache.insert(key, value);
        value
    }

    fn evaluations(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    fn incremental_session<'a>(
        &'a self,
        instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        match self.strategy {
            Strategy::Bv => {
                // Pools within the exact cutoff are evaluated by exact
                // enumeration (and served by the cache); the quantized
                // session only pays off beyond it.
                if instance.num_candidates() <= self.engine.exact_cutoff() {
                    return None;
                }
                Some(bv_incremental_session_in(
                    instance.pool(),
                    instance.prior(),
                    *self.engine.bucket_estimator().config(),
                    &self.requests,
                    &self.scratch,
                ))
            }
            Strategy::Mv => Some(mv_incremental_session_in(
                instance.prior(),
                &self.requests,
                &self.scratch,
            )),
        }
    }

    fn incremental_session_in<'a>(
        &'a self,
        instance: &JspInstance,
        arena: &'a SharedJqScratch,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        // Same gating as `incremental_session`, but the engine buffers come
        // from the caller's arena — this is what lets each portfolio lane
        // reopen sessions without contending on this objective's shared
        // scratch (`jury_selection::ArenaObjective`).
        match self.strategy {
            Strategy::Bv => {
                if instance.num_candidates() <= self.engine.exact_cutoff() {
                    return None;
                }
                Some(bv_incremental_session_in(
                    instance.pool(),
                    instance.prior(),
                    *self.engine.bucket_estimator().config(),
                    &self.requests,
                    arena,
                ))
            }
            Strategy::Mv => Some(mv_incremental_session_in(
                instance.prior(),
                &self.requests,
                arena,
            )),
        }
    }
}

/// The cache-backed multi-class objective: wraps
/// [`jury_selection::MultiClassBvObjective`] (which owns the confusion-
/// matrix pool, the categorical prior, and the incremental sessions) and
/// routes every batch evaluation through the shared store under a
/// [`multiclass_signature`] key. Shadow juries are resolved back to their
/// matrices by id before signing, so the key describes exactly what the
/// inner objective scores.
pub(crate) struct CachedMultiClassObjective<'a> {
    /// Owns the (only copies of the) pool and prior, exposed via its
    /// `pool()`/`prior()` accessors.
    inner: MultiClassBvObjective,
    /// Pool position by worker id, built once so the per-evaluation member
    /// resolution is `O(jury)` map hits instead of `O(jury · pool)` scans.
    index: HashMap<jury_model::WorkerId, usize>,
    cache: &'a JqCache,
    local_hits: AtomicU64,
}

impl<'a> CachedMultiClassObjective<'a> {
    /// Builds the objective for a pool/prior pair under the given service
    /// configuration.
    ///
    /// # Errors
    ///
    /// Fails when the prior's label count does not match the pool's.
    pub(crate) fn new(
        pool: &MatrixPool,
        prior: &CategoricalPrior,
        config: &ServiceConfig,
        cache: &'a JqCache,
    ) -> ModelResult<Self> {
        let inner = MultiClassBvObjective::new(pool.clone(), prior.clone())?
            .with_bucket_config(config.multiclass_bucket)
            .with_incremental_config(config.multiclass_incremental)
            .with_session_pool_cutoff(config.multiclass_session_cutoff);
        let index = pool
            .iter()
            .enumerate()
            .map(|(position, worker)| (worker.id(), position))
            .collect();
        Ok(CachedMultiClassObjective {
            inner,
            index,
            cache,
            local_hits: AtomicU64::new(0),
        })
    }

    /// Cache hits observed by this objective instance (i.e. this solve).
    pub(crate) fn local_hits(&self) -> u64 {
        self.local_hits.load(Ordering::Relaxed)
    }

    /// Whether a pool of `candidates` members requires incremental sessions
    /// under this objective's configuration (see
    /// [`MultiClassBvObjective::session_required`]).
    pub(crate) fn session_required(&self, candidates: usize) -> bool {
        self.inner.session_required(candidates)
    }

    /// The jury members the inner objective will score for this shadow
    /// jury: pool matrices looked up by id (borrowed, no matrix clones),
    /// unknown ids dropped — exactly the inner objective's resolution
    /// policy, shared so response members can never disagree with what was
    /// scored.
    pub(crate) fn members(&self, jury: &Jury) -> Vec<&MatrixWorker> {
        let workers = self.inner.pool().workers();
        jury.ids()
            .into_iter()
            .filter_map(|id| self.index.get(&id).map(|&pos| &workers[pos]))
            .collect()
    }
}

impl JuryObjective for CachedMultiClassObjective<'_> {
    fn name(&self) -> &'static str {
        "JQ(BV, multi-class, cached)"
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        let key = CacheKey::MultiClass {
            num_buckets: self.inner.bucket_config().num_buckets,
            exact_votings: self.inner.exact_votings(),
            signature: multiclass_signature(self.members(jury), self.inner.prior()),
        };
        if let Some(value) = self.cache.get(&key, CacheKind::MultiClass) {
            self.local_hits.fetch_add(1, Ordering::Relaxed);
            return value;
        }
        let value = self.inner.evaluate(jury, prior);
        self.cache.insert(key, value);
        value
    }

    fn evaluations(&self) -> u64 {
        // The inner objective counts batch computations and session probes;
        // cache hits short-circuit before reaching it, so they are added
        // here — every request for a value is counted exactly once.
        self.inner.evaluations() + self.local_hits.load(Ordering::Relaxed)
    }

    fn incremental_session<'a>(
        &'a self,
        instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        self.inner.incremental_session(instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_jq::{exact_bv_jq, exact_multiclass_bv_jq};

    fn engine() -> JqEngine {
        crate::ServiceConfig::default().jq_engine()
    }

    #[test]
    fn cached_values_match_direct_evaluation() {
        let cache = JqCache::new(1024, 8);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let first = objective.evaluate(&jury, Prior::uniform());
        let second = objective.evaluate(&jury, Prior::uniform());
        assert_eq!(first, second);
        assert!((first - exact_bv_jq(&jury, Prior::uniform()).unwrap()).abs() < 1e-12);
        assert_eq!(objective.evaluations(), 2);
        assert_eq!(objective.local_hits(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!((stats.binary.hits, stats.binary.misses), (1, 1));
        assert_eq!(stats.multiclass, CacheKindStats::default());
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strategies_do_not_collide() {
        let cache = JqCache::new(1024, 8);
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let bv = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let mv = CachedObjective::new(engine(), Strategy::Mv, &cache);
        let bv_value = bv.evaluate(&jury, Prior::uniform());
        let mv_value = mv.evaluate(&jury, Prior::uniform());
        assert!((bv_value - 0.9).abs() < 1e-12);
        assert!((mv_value - 0.792).abs() < 1e-12);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn engine_configurations_do_not_collide() {
        use jury_jq::{BucketCount, BucketJqConfig, JqEngine};
        let cache = JqCache::new(1024, 8);
        // Same jury and prior, but one objective enumerates exactly while the
        // other is forced onto a deliberately coarse bucket approximation:
        // the values differ, so the cache must keep them apart.
        let exact_engine = JqEngine::new(BucketJqConfig::default()).with_exact_cutoff(12);
        let coarse_engine = JqEngine::approximate_only(
            BucketJqConfig::default().with_buckets(BucketCount::Fixed(3)),
        );
        let exact = CachedObjective::new(exact_engine, Strategy::Bv, &cache);
        let coarse = CachedObjective::new(coarse_engine, Strategy::Bv, &cache);
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let exact_value = exact.evaluate(&jury, Prior::uniform());
        let coarse_value = coarse.evaluate(&jury, Prior::uniform());
        assert_eq!(
            cache.stats().entries,
            2,
            "configs must get separate entries"
        );
        assert!((exact_value - 0.9).abs() < 1e-12);
        // Re-evaluating under each engine returns its own cached value.
        assert_eq!(exact.evaluate(&jury, Prior::uniform()), exact_value);
        assert_eq!(coarse.evaluate(&jury, Prior::uniform()), coarse_value);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = JqCache::new(0, 8);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let jury = Jury::from_qualities(&[0.8, 0.7]).unwrap();
        objective.evaluate(&jury, Prior::uniform());
        objective.evaluate(&jury, Prior::uniform());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (0, 0, 0));
        assert_eq!(objective.local_hits(), 0);
    }

    #[test]
    fn capacity_overflow_never_grows_the_cache() {
        let cache = JqCache::new(2, 1);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        for q in [0.6, 0.65, 0.7, 0.75, 0.8] {
            let jury = Jury::from_qualities(&[q]).unwrap();
            objective.evaluate(&jury, Prior::uniform());
        }
        assert!(cache.stats().entries <= 2);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn eviction_drops_the_stalest_entries_first() {
        let cache = JqCache::new(4, 1);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let juries: Vec<Jury> = [0.6, 0.65, 0.7, 0.75, 0.8]
            .iter()
            .map(|&q| Jury::from_qualities(&[q]).unwrap())
            .collect();
        // Fill to capacity, then touch the oldest entry so it becomes the
        // most recently used.
        for jury in &juries[..4] {
            objective.evaluate(jury, Prior::uniform());
        }
        objective.evaluate(&juries[0], Prior::uniform());
        // Overflow: the stalest half (entries 1 and 2) must go; the touched
        // entry 0 and the fresher entry 3 must survive.
        objective.evaluate(&juries[4], Prior::uniform());
        assert_eq!(cache.stats().evictions, 2);

        let hits_before = cache.stats().hits;
        objective.evaluate(&juries[0], Prior::uniform());
        objective.evaluate(&juries[3], Prior::uniform());
        objective.evaluate(&juries[4], Prior::uniform());
        assert_eq!(
            cache.stats().hits,
            hits_before + 3,
            "recently used entries must survive the eviction"
        );

        let misses_before = cache.stats().misses;
        objective.evaluate(&juries[1], Prior::uniform());
        assert_eq!(
            cache.stats().misses,
            misses_before + 1,
            "the stalest entry must have been evicted"
        );
    }

    fn multiclass_fixture() -> (MatrixPool, CategoricalPrior) {
        let pool =
            MatrixPool::from_qualities_and_costs(&[0.9, 0.7, 0.6], &[1.0, 1.0, 1.0], 3).unwrap();
        let prior = CategoricalPrior::uniform(3).unwrap();
        (pool, prior)
    }

    #[test]
    fn multiclass_cached_values_match_direct_evaluation() {
        let cache = JqCache::new(1024, 8);
        let (pool, prior) = multiclass_fixture();
        let objective =
            CachedMultiClassObjective::new(&pool, &prior, &ServiceConfig::default(), &cache)
                .unwrap();
        let shadow = pool.shadow_pool();
        let jury = Jury::new(shadow.workers()[..2].to_vec());
        let first = objective.evaluate(&jury, Prior::uniform());
        let second = objective.evaluate(&jury, Prior::uniform());
        assert_eq!(first, second);
        let direct = exact_multiclass_bv_jq(&pool.jury(&jury.ids()).unwrap(), &prior).unwrap();
        assert!((first - direct).abs() < 1e-12);
        assert_eq!(objective.local_hits(), 1);
        assert_eq!(objective.evaluations(), 2);
        let stats = cache.stats();
        assert_eq!((stats.multiclass.hits, stats.multiclass.misses), (1, 1));
        assert_eq!(stats.binary, CacheKindStats::default());
    }

    #[test]
    fn binary_and_multiclass_entries_share_the_store_without_colliding() {
        let cache = JqCache::new(1024, 8);
        let (pool, prior) = multiclass_fixture();
        let multi =
            CachedMultiClassObjective::new(&pool, &prior, &ServiceConfig::default(), &cache)
                .unwrap();
        let binary = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let shadow = pool.shadow_pool();
        let jury = Jury::new(shadow.workers().to_vec());
        let multi_value = multi.evaluate(&jury, Prior::uniform());
        let binary_value = binary.evaluate(&jury, Prior::uniform());
        // A 3-class matrix jury and its mean-accuracy shadow are different
        // statistical objects — both must coexist in the one store.
        assert_ne!(multi_value, binary_value);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.binary.misses, 1);
        assert_eq!(stats.multiclass.misses, 1);
        // Re-reads hit their own kind only.
        multi.evaluate(&jury, Prior::uniform());
        binary.evaluate(&jury, Prior::uniform());
        let stats = cache.stats();
        assert_eq!(stats.binary.hits, 1);
        assert_eq!(stats.multiclass.hits, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn multiclass_entries_participate_in_eviction() {
        let cache = JqCache::new(2, 1);
        let (pool, prior) = multiclass_fixture();
        let objective =
            CachedMultiClassObjective::new(&pool, &prior, &ServiceConfig::default(), &cache)
                .unwrap();
        let shadow = pool.shadow_pool();
        for k in 1..=3 {
            let jury = Jury::new(shadow.workers()[..k].to_vec());
            objective.evaluate(&jury, Prior::uniform());
        }
        assert!(cache.stats().entries <= 2);
        assert!(cache.stats().evictions > 0);
    }

    /// A binary cache key for a single-member jury of quality `q`. The
    /// signature quantizes at `2⁻⁴⁰`, so qualities spaced `≥ 1e-3` apart
    /// always produce distinct keys.
    fn binary_key(q: f64) -> CacheKey {
        CacheKey::Binary {
            strategy: Strategy::Bv,
            bucket: jury_jq::BucketJqConfig::default(),
            exact_cutoff: 14,
            signature: jury_signature(&Jury::from_qualities(&[q]).unwrap(), Prior::uniform()),
        }
    }

    #[test]
    fn shard_routing_is_deterministic_across_stores() {
        let a = JqCache::new(1024, 8);
        let b = JqCache::new(4096, 8);
        for i in 0..200 {
            let q = 0.5 + 0.002 * i as f64 / 1.0;
            let key = binary_key(q.min(0.949));
            let shard = a.shard_for(&key);
            assert!(shard < a.num_shards());
            assert_eq!(shard, a.shard_for(&key), "same store, same key");
            assert_eq!(
                shard,
                b.shard_for(&key),
                "routing must depend only on the key and shard count"
            );
        }
    }

    #[test]
    fn eviction_in_one_shard_leaves_other_shards_intact() {
        // Two shards of two slots each. Overflowing one shard's slots must
        // evict only within that shard.
        let cache = JqCache::new(4, 2);
        let mut by_shard: Vec<Vec<CacheKey>> = vec![Vec::new(), Vec::new()];
        let mut q = 0.5;
        while by_shard[0].len() < 5 || by_shard[1].len() < 2 {
            let key = binary_key(q);
            let shard = cache.shard_for(&key);
            by_shard[shard].push(key);
            q += 0.002;
            assert!(q < 0.95, "could not craft enough keys per shard");
        }
        let (overflow, quiet) = (&by_shard[0], &by_shard[1][..2]);
        for key in quiet {
            cache.insert(key.clone(), 1.0);
        }
        // Five inserts into a two-slot shard force at least one eviction
        // sweep there.
        for key in overflow {
            cache.insert(key.clone(), 2.0);
        }
        assert!(cache.stats().evictions > 0);
        for key in quiet {
            assert_eq!(
                cache.get(key, CacheKind::Binary),
                Some(1.0),
                "eviction pressure on shard 0 must not touch shard 1"
            );
        }
        let shard_stats = cache.shard_stats();
        assert!(shard_stats[0].evictions > 0);
        assert_eq!(shard_stats[1].evictions, 0);
    }

    #[test]
    fn aggregated_stats_equal_shard_sums_under_concurrent_mixed_traffic() {
        // N threads × M requests of both kinds, disjoint key sets per
        // thread, capacity ample: every counter is exactly predictable and
        // the aggregate must equal the per-shard sum.
        const THREADS: usize = 8;
        const KEYS_PER_THREAD: usize = 25;
        let cache = JqCache::new(1 << 16, 8);
        let (pool, cat_prior) = multiclass_fixture();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                let pool = &pool;
                let cat_prior = &cat_prior;
                scope.spawn(move || {
                    for i in 0..KEYS_PER_THREAD {
                        let q = 0.5 + 0.002 * (t * KEYS_PER_THREAD + i) as f64;
                        let key = binary_key(q);
                        // miss, insert, hit — exactly once each.
                        assert_eq!(cache.get(&key, CacheKind::Binary), None);
                        cache.insert(key.clone(), q);
                        assert_eq!(cache.get(&key, CacheKind::Binary), Some(q));
                        // The multi-class key space is disjoint by
                        // construction; give it the same traffic.
                        let members: Vec<&MatrixWorker> =
                            pool.workers().iter().take(1 + (i % 3)).collect();
                        let mc_key = CacheKey::MultiClass {
                            num_buckets: 64 + t * KEYS_PER_THREAD + i,
                            exact_votings: 1 << 12,
                            signature: multiclass_signature(members, cat_prior),
                        };
                        assert_eq!(cache.get(&mc_key, CacheKind::MultiClass), None);
                        cache.insert(mc_key.clone(), q + 1.0);
                        assert_eq!(cache.get(&mc_key, CacheKind::MultiClass), Some(q + 1.0));
                    }
                });
            }
        });

        let total = cache.stats();
        let per_kind = (THREADS * KEYS_PER_THREAD) as u64;
        assert_eq!(total.binary.hits, per_kind);
        assert_eq!(total.binary.misses, per_kind);
        assert_eq!(total.multiclass.hits, per_kind);
        assert_eq!(total.multiclass.misses, per_kind);
        assert_eq!(total.hits, 2 * per_kind);
        assert_eq!(total.misses, 2 * per_kind);
        assert_eq!(total.evictions, 0);
        assert_eq!(total.entries, 2 * per_kind as usize);

        let mut summed = CacheStats::default();
        for shard in cache.shard_stats() {
            summed.entries += shard.entries;
            summed.hits += shard.hits;
            summed.misses += shard.misses;
            summed.evictions += shard.evictions;
            summed.binary.hits += shard.binary.hits;
            summed.binary.misses += shard.binary.misses;
            summed.multiclass.hits += shard.multiclass.hits;
            summed.multiclass.misses += shard.multiclass.misses;
        }
        assert_eq!(total, summed, "aggregate must equal the per-shard sum");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    // The glob above also pulls in proptest's `Strategy` trait; the explicit
    // import keeps the request enum the one the keys are built from.
    use crate::request::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(32)
        ))]

        /// Routing depends only on the key: any jury signature maps to the
        /// same shard on every store with the same shard count, and the
        /// shard index is always in range.
        #[test]
        fn routing_is_a_pure_function_of_the_key(
            qualities in proptest::collection::vec(0.5f64..0.95, 1..6),
            shards in 1usize..16,
        ) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let key = CacheKey::Binary {
                strategy: Strategy::Bv,
                bucket: jury_jq::BucketJqConfig::default(),
                exact_cutoff: 14,
                signature: jury_signature(&jury, Prior::uniform()),
            };
            let a = JqCache::new(64, shards);
            let b = JqCache::new(1024, shards);
            let shard = a.shard_for(&key);
            prop_assert!(shard < shards.max(1));
            prop_assert_eq!(shard, a.shard_for(&key));
            prop_assert_eq!(shard, b.shard_for(&key));
        }

        /// Hits and misses always balance: storing then reading any key set
        /// keeps aggregate totals equal to the per-shard sums, whatever the
        /// shard count.
        #[test]
        fn aggregate_always_equals_shard_sum(
            qualities in proptest::collection::vec(0.5f64..0.95, 1..20),
            shards in 1usize..9,
        ) {
            let cache = JqCache::new(1 << 12, shards);
            for (i, &q) in qualities.iter().enumerate() {
                let jury = Jury::from_qualities(&[q]).unwrap();
                let key = CacheKey::Binary {
                    strategy: Strategy::Bv,
                    bucket: jury_jq::BucketJqConfig::default(),
                    exact_cutoff: 14,
                    signature: jury_signature(&jury, Prior::uniform()),
                };
                if cache.get(&key, CacheKind::Binary).is_none() {
                    cache.insert(key, i as f64);
                }
            }
            let total = cache.stats();
            let summed = cache.shard_stats().into_iter().fold(
                CacheStats::default(),
                |mut acc, shard| {
                    acc.entries += shard.entries;
                    acc.hits += shard.hits;
                    acc.misses += shard.misses;
                    acc.evictions += shard.evictions;
                    acc.binary.hits += shard.binary.hits;
                    acc.binary.misses += shard.binary.misses;
                    acc.multiclass.hits += shard.multiclass.hits;
                    acc.multiclass.misses += shard.multiclass.misses;
                    acc
                },
            );
            prop_assert_eq!(total, summed);
            prop_assert_eq!(total.hits + total.misses, qualities.len() as u64);
        }
    }
}
