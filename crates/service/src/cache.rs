//! The shared, memoizing JQ-evaluation cache and the cache-backed objective.
//!
//! JSP searches spend essentially all their time evaluating `JQ(J, S, α)`,
//! and across a batch of requests over overlapping pools the same
//! `(jury-quality multiset, prior, strategy)` evaluation recurs constantly —
//! every budget point of a budget–quality sweep re-examines mostly the same
//! juries. The cache keys evaluations by the quantized
//! [`jury_signature`] (sound: JQ depends only on the quality multiset and
//! the prior; see `jury_jq::signature`) plus the strategy, behind a
//! `parking_lot`-guarded map shared by all worker threads of a batch.
//!
//! The cache is the *outer* memoization layer; underneath it the objective
//! also hands the solvers incremental push/pop/swap sessions
//! (`jury_jq::IncrementalJq` / `jury_jq::IncrementalMvJq`), so the inner
//! search loop of annealing and marginal greedy never pays a from-scratch
//! JQ computation either — batch memoization outside, incremental updates
//! inside.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use jury_jq::{jury_signature, JqEngine, JurySignature};
use jury_model::{Jury, Prior};
use jury_selection::{
    bv_incremental_session, mv_incremental_session, IncrementalSession, JspInstance, JuryObjective,
};

use crate::request::Strategy;

/// A point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently stored.
    pub entries: usize,
    /// Lifetime lookups served from the cache.
    pub hits: u64,
    /// Lifetime lookups that had to compute the value.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    strategy: Strategy,
    // The engine fingerprint: JQ values computed under different bucket
    // settings or exact cutoffs are different numbers, and per-request
    // config overrides share this cache, so the configuration must be part
    // of the key.
    bucket: jury_jq::BucketJqConfig,
    exact_cutoff: usize,
    signature: JurySignature,
}

/// The shared evaluation cache. One per [`crate::JuryService`]; it outlives
/// individual requests, so repeated and batched calls keep re-using it.
#[derive(Debug)]
pub(crate) struct JqCache {
    capacity: usize,
    map: RwLock<HashMap<CacheKey, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl JqCache {
    pub(crate) fn new(capacity: usize) -> Self {
        JqCache {
            capacity,
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get(&self, key: &CacheKey) -> Option<f64> {
        if self.capacity == 0 {
            return None;
        }
        let hit = self.map.read().get(key).copied();
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: CacheKey, value: f64) {
        if self.capacity == 0 {
            return;
        }
        let mut map = self.map.write();
        if map.len() >= self.capacity {
            // Wholesale reset: O(1) amortized bookkeeping, and the very next
            // requests re-warm the entries that still matter.
            map.clear();
        }
        map.insert(key, value);
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.read().len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The service's unified objective: one implementation of
/// [`JuryObjective`] covering both strategies, with every evaluation routed
/// through the shared cache. This is what replaces the separate
/// `Optjs`/`Mvjs` engines of the old system layer — the solvers are generic
/// over the objective, so a strategy is now just a field, not a type.
pub(crate) struct CachedObjective<'a> {
    engine: JqEngine,
    strategy: Strategy,
    cache: &'a JqCache,
    requests: AtomicU64,
    local_hits: AtomicU64,
}

impl<'a> CachedObjective<'a> {
    pub(crate) fn new(engine: JqEngine, strategy: Strategy, cache: &'a JqCache) -> Self {
        CachedObjective {
            engine,
            strategy,
            cache,
            requests: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
        }
    }

    /// Cache hits observed by this objective instance (i.e. this solve).
    pub(crate) fn local_hits(&self) -> u64 {
        self.local_hits.load(Ordering::Relaxed)
    }

    fn compute(&self, jury: &Jury, prior: Prior) -> f64 {
        match self.strategy {
            Strategy::Bv => self.engine.bv_jq(jury, prior).value,
            Strategy::Mv => self.engine.mv_jq(jury, prior).value,
        }
    }
}

impl JuryObjective for CachedObjective<'_> {
    fn name(&self) -> &'static str {
        match self.strategy {
            Strategy::Bv => "JQ(BV)",
            Strategy::Mv => "JQ(MV)",
        }
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let key = CacheKey {
            strategy: self.strategy,
            bucket: *self.engine.bucket_estimator().config(),
            exact_cutoff: self.engine.exact_cutoff(),
            signature: jury_signature(jury, prior),
        };
        if let Some(value) = self.cache.get(&key) {
            self.local_hits.fetch_add(1, Ordering::Relaxed);
            return value;
        }
        // Concurrent threads may compute the same value twice; the insert is
        // idempotent, so that only costs time, never correctness.
        let value = self.compute(jury, prior);
        self.cache.insert(key, value);
        value
    }

    fn evaluations(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    fn incremental_session<'a>(
        &'a self,
        instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        match self.strategy {
            Strategy::Bv => {
                // Pools within the exact cutoff are evaluated by exact
                // enumeration (and served by the cache); the quantized
                // session only pays off beyond it.
                if instance.num_candidates() <= self.engine.exact_cutoff() {
                    return None;
                }
                Some(bv_incremental_session(
                    instance.pool(),
                    instance.prior(),
                    *self.engine.bucket_estimator().config(),
                    &self.requests,
                ))
            }
            Strategy::Mv => Some(mv_incremental_session(instance.prior(), &self.requests)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_jq::exact_bv_jq;

    fn engine() -> JqEngine {
        crate::ServiceConfig::default().jq_engine()
    }

    #[test]
    fn cached_values_match_direct_evaluation() {
        let cache = JqCache::new(1024);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let first = objective.evaluate(&jury, Prior::uniform());
        let second = objective.evaluate(&jury, Prior::uniform());
        assert_eq!(first, second);
        assert!((first - exact_bv_jq(&jury, Prior::uniform()).unwrap()).abs() < 1e-12);
        assert_eq!(objective.evaluations(), 2);
        assert_eq!(objective.local_hits(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strategies_do_not_collide() {
        let cache = JqCache::new(1024);
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let bv = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let mv = CachedObjective::new(engine(), Strategy::Mv, &cache);
        let bv_value = bv.evaluate(&jury, Prior::uniform());
        let mv_value = mv.evaluate(&jury, Prior::uniform());
        assert!((bv_value - 0.9).abs() < 1e-12);
        assert!((mv_value - 0.792).abs() < 1e-12);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn engine_configurations_do_not_collide() {
        use jury_jq::{BucketCount, BucketJqConfig, JqEngine};
        let cache = JqCache::new(1024);
        // Same jury and prior, but one objective enumerates exactly while the
        // other is forced onto a deliberately coarse bucket approximation:
        // the values differ, so the cache must keep them apart.
        let exact_engine = JqEngine::new(BucketJqConfig::default()).with_exact_cutoff(12);
        let coarse_engine = JqEngine::approximate_only(
            BucketJqConfig::default().with_buckets(BucketCount::Fixed(3)),
        );
        let exact = CachedObjective::new(exact_engine, Strategy::Bv, &cache);
        let coarse = CachedObjective::new(coarse_engine, Strategy::Bv, &cache);
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let exact_value = exact.evaluate(&jury, Prior::uniform());
        let coarse_value = coarse.evaluate(&jury, Prior::uniform());
        assert_eq!(
            cache.stats().entries,
            2,
            "configs must get separate entries"
        );
        assert!((exact_value - 0.9).abs() < 1e-12);
        // Re-evaluating under each engine returns its own cached value.
        assert_eq!(exact.evaluate(&jury, Prior::uniform()), exact_value);
        assert_eq!(coarse.evaluate(&jury, Prior::uniform()), coarse_value);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = JqCache::new(0);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let jury = Jury::from_qualities(&[0.8, 0.7]).unwrap();
        objective.evaluate(&jury, Prior::uniform());
        objective.evaluate(&jury, Prior::uniform());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (0, 0, 0));
        assert_eq!(objective.local_hits(), 0);
    }

    #[test]
    fn capacity_overflow_clears_instead_of_growing() {
        let cache = JqCache::new(2);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        for q in [0.6, 0.65, 0.7, 0.75, 0.8] {
            let jury = Jury::from_qualities(&[q]).unwrap();
            objective.evaluate(&jury, Prior::uniform());
        }
        assert!(cache.stats().entries <= 2);
    }
}
