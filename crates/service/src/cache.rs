//! The shared, memoizing JQ-evaluation cache and the cache-backed objective.
//!
//! JSP searches spend essentially all their time evaluating `JQ(J, S, α)`,
//! and across a batch of requests over overlapping pools the same
//! `(jury-quality multiset, prior, strategy)` evaluation recurs constantly —
//! every budget point of a budget–quality sweep re-examines mostly the same
//! juries. The cache keys evaluations by the quantized
//! [`jury_signature`] (sound: JQ depends only on the quality multiset and
//! the prior; see `jury_jq::signature`) plus the strategy, behind a
//! `parking_lot`-guarded map shared by all worker threads of a batch.
//!
//! The cache is the *outer* memoization layer; underneath it the objective
//! also hands the solvers incremental push/pop/swap sessions
//! (`jury_jq::IncrementalJq` / `jury_jq::IncrementalMvJq`), so the inner
//! search loop of annealing and marginal greedy never pays a from-scratch
//! JQ computation either — batch memoization outside, incremental updates
//! inside.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use jury_jq::{jury_signature, JqEngine, JurySignature};
use jury_model::{Jury, Prior};
use jury_selection::{
    bv_incremental_session, mv_incremental_session, IncrementalSession, JspInstance, JuryObjective,
};

use crate::request::Strategy;

/// A point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently stored.
    pub entries: usize,
    /// Lifetime lookups served from the cache.
    pub hits: u64,
    /// Lifetime lookups that had to compute the value.
    pub misses: u64,
    /// Lifetime entries dropped by the segmented-LRU eviction.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    strategy: Strategy,
    // The engine fingerprint: JQ values computed under different bucket
    // settings or exact cutoffs are different numbers, and per-request
    // config overrides share this cache, so the configuration must be part
    // of the key.
    bucket: jury_jq::BucketJqConfig,
    exact_cutoff: usize,
    signature: JurySignature,
}

/// One memoized evaluation: the value plus a last-used stamp, bumped on
/// every hit (atomically, so hits only ever take the read lock).
#[derive(Debug)]
struct CacheEntry {
    value: f64,
    last_used: AtomicU64,
}

/// The shared evaluation cache. One per [`crate::JuryService`]; it outlives
/// individual requests, so repeated and batched calls keep re-using it.
///
/// Overflow is handled by **segmented LRU eviction**: when an insert finds
/// the cache full, the stalest half of the entries (by last-used stamp) is
/// dropped in one sweep. Hot entries — the ones batches and sweeps keep
/// re-reading — survive, unlike the wholesale `clear()` this replaces, while
/// the half-at-a-time segmentation keeps the amortized bookkeeping cost per
/// insert `O(1)` (a full LRU list would pay pointer churn on every hit).
#[derive(Debug)]
pub(crate) struct JqCache {
    capacity: usize,
    map: RwLock<HashMap<CacheKey, CacheEntry>>,
    /// Monotonic logical clock handing out last-used stamps.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl JqCache {
    pub(crate) fn new(capacity: usize) -> Self {
        JqCache {
            capacity,
            map: RwLock::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn get(&self, key: &CacheKey) -> Option<f64> {
        if self.capacity == 0 {
            return None;
        }
        let map = self.map.read();
        match map.get(key) {
            Some(entry) => {
                entry
                    .last_used
                    .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: CacheKey, value: f64) {
        if self.capacity == 0 {
            return;
        }
        let mut map = self.map.write();
        if map.len() >= self.capacity && !map.contains_key(&key) {
            // Evict the stalest segment: everything at or below the median
            // last-used stamp. Stamps are unique (every hit and insert draws
            // a fresh tick), so this removes exactly `len − keep` entries.
            let keep = self.capacity / 2;
            let mut stamps: Vec<u64> = map
                .values()
                .map(|entry| entry.last_used.load(Ordering::Relaxed))
                .collect();
            let evict = stamps.len() - keep;
            let (_, cutoff, _) = stamps.select_nth_unstable(evict - 1);
            let cutoff = *cutoff;
            map.retain(|_, entry| entry.last_used.load(Ordering::Relaxed) > cutoff);
            self.evictions.fetch_add(evict as u64, Ordering::Relaxed);
        }
        map.insert(
            key,
            CacheEntry {
                value,
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
            },
        );
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.read().len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The service's unified objective: one implementation of
/// [`JuryObjective`] covering both strategies, with every evaluation routed
/// through the shared cache. This is what replaces the separate
/// `Optjs`/`Mvjs` engines of the old system layer — the solvers are generic
/// over the objective, so a strategy is now just a field, not a type.
pub(crate) struct CachedObjective<'a> {
    engine: JqEngine,
    strategy: Strategy,
    cache: &'a JqCache,
    requests: AtomicU64,
    local_hits: AtomicU64,
}

impl<'a> CachedObjective<'a> {
    pub(crate) fn new(engine: JqEngine, strategy: Strategy, cache: &'a JqCache) -> Self {
        CachedObjective {
            engine,
            strategy,
            cache,
            requests: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
        }
    }

    /// Cache hits observed by this objective instance (i.e. this solve).
    pub(crate) fn local_hits(&self) -> u64 {
        self.local_hits.load(Ordering::Relaxed)
    }

    fn compute(&self, jury: &Jury, prior: Prior) -> f64 {
        match self.strategy {
            Strategy::Bv => self.engine.bv_jq(jury, prior).value,
            Strategy::Mv => self.engine.mv_jq(jury, prior).value,
        }
    }
}

impl JuryObjective for CachedObjective<'_> {
    fn name(&self) -> &'static str {
        match self.strategy {
            Strategy::Bv => "JQ(BV)",
            Strategy::Mv => "JQ(MV)",
        }
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let key = CacheKey {
            strategy: self.strategy,
            bucket: *self.engine.bucket_estimator().config(),
            exact_cutoff: self.engine.exact_cutoff(),
            signature: jury_signature(jury, prior),
        };
        if let Some(value) = self.cache.get(&key) {
            self.local_hits.fetch_add(1, Ordering::Relaxed);
            return value;
        }
        // Concurrent threads may compute the same value twice; the insert is
        // idempotent, so that only costs time, never correctness.
        let value = self.compute(jury, prior);
        self.cache.insert(key, value);
        value
    }

    fn evaluations(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    fn incremental_session<'a>(
        &'a self,
        instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        match self.strategy {
            Strategy::Bv => {
                // Pools within the exact cutoff are evaluated by exact
                // enumeration (and served by the cache); the quantized
                // session only pays off beyond it.
                if instance.num_candidates() <= self.engine.exact_cutoff() {
                    return None;
                }
                Some(bv_incremental_session(
                    instance.pool(),
                    instance.prior(),
                    *self.engine.bucket_estimator().config(),
                    &self.requests,
                ))
            }
            Strategy::Mv => Some(mv_incremental_session(instance.prior(), &self.requests)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_jq::exact_bv_jq;

    fn engine() -> JqEngine {
        crate::ServiceConfig::default().jq_engine()
    }

    #[test]
    fn cached_values_match_direct_evaluation() {
        let cache = JqCache::new(1024);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let first = objective.evaluate(&jury, Prior::uniform());
        let second = objective.evaluate(&jury, Prior::uniform());
        assert_eq!(first, second);
        assert!((first - exact_bv_jq(&jury, Prior::uniform()).unwrap()).abs() < 1e-12);
        assert_eq!(objective.evaluations(), 2);
        assert_eq!(objective.local_hits(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strategies_do_not_collide() {
        let cache = JqCache::new(1024);
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let bv = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let mv = CachedObjective::new(engine(), Strategy::Mv, &cache);
        let bv_value = bv.evaluate(&jury, Prior::uniform());
        let mv_value = mv.evaluate(&jury, Prior::uniform());
        assert!((bv_value - 0.9).abs() < 1e-12);
        assert!((mv_value - 0.792).abs() < 1e-12);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn engine_configurations_do_not_collide() {
        use jury_jq::{BucketCount, BucketJqConfig, JqEngine};
        let cache = JqCache::new(1024);
        // Same jury and prior, but one objective enumerates exactly while the
        // other is forced onto a deliberately coarse bucket approximation:
        // the values differ, so the cache must keep them apart.
        let exact_engine = JqEngine::new(BucketJqConfig::default()).with_exact_cutoff(12);
        let coarse_engine = JqEngine::approximate_only(
            BucketJqConfig::default().with_buckets(BucketCount::Fixed(3)),
        );
        let exact = CachedObjective::new(exact_engine, Strategy::Bv, &cache);
        let coarse = CachedObjective::new(coarse_engine, Strategy::Bv, &cache);
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let exact_value = exact.evaluate(&jury, Prior::uniform());
        let coarse_value = coarse.evaluate(&jury, Prior::uniform());
        assert_eq!(
            cache.stats().entries,
            2,
            "configs must get separate entries"
        );
        assert!((exact_value - 0.9).abs() < 1e-12);
        // Re-evaluating under each engine returns its own cached value.
        assert_eq!(exact.evaluate(&jury, Prior::uniform()), exact_value);
        assert_eq!(coarse.evaluate(&jury, Prior::uniform()), coarse_value);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = JqCache::new(0);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let jury = Jury::from_qualities(&[0.8, 0.7]).unwrap();
        objective.evaluate(&jury, Prior::uniform());
        objective.evaluate(&jury, Prior::uniform());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (0, 0, 0));
        assert_eq!(objective.local_hits(), 0);
    }

    #[test]
    fn capacity_overflow_never_grows_the_cache() {
        let cache = JqCache::new(2);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        for q in [0.6, 0.65, 0.7, 0.75, 0.8] {
            let jury = Jury::from_qualities(&[q]).unwrap();
            objective.evaluate(&jury, Prior::uniform());
        }
        assert!(cache.stats().entries <= 2);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn eviction_drops_the_stalest_entries_first() {
        let cache = JqCache::new(4);
        let objective = CachedObjective::new(engine(), Strategy::Bv, &cache);
        let juries: Vec<Jury> = [0.6, 0.65, 0.7, 0.75, 0.8]
            .iter()
            .map(|&q| Jury::from_qualities(&[q]).unwrap())
            .collect();
        // Fill to capacity, then touch the oldest entry so it becomes the
        // most recently used.
        for jury in &juries[..4] {
            objective.evaluate(jury, Prior::uniform());
        }
        objective.evaluate(&juries[0], Prior::uniform());
        // Overflow: the stalest half (entries 1 and 2) must go; the touched
        // entry 0 and the fresher entry 3 must survive.
        objective.evaluate(&juries[4], Prior::uniform());
        assert_eq!(cache.stats().evictions, 2);

        let hits_before = cache.stats().hits;
        objective.evaluate(&juries[0], Prior::uniform());
        objective.evaluate(&juries[3], Prior::uniform());
        objective.evaluate(&juries[4], Prior::uniform());
        assert_eq!(
            cache.stats().hits,
            hits_before + 3,
            "recently used entries must survive the eviction"
        );

        let misses_before = cache.stats().misses;
        objective.evaluate(&juries[1], Prior::uniform());
        assert_eq!(
            cache.stats().misses,
            misses_before + 1,
            "the stalest entry must have been evicted"
        );
    }
}
