//! Service configuration: the knobs shared by every request, overridable
//! per request via [`crate::SelectionRequest::with_config`].
//!
//! This type subsumes the old `jury_optjs::SystemConfig` (which is now a
//! re-export of it): the same bucket/annealing/cutoff knobs drive both the
//! OPTJS and MVJS strategies, plus the service-level batch and cache
//! settings and the multi-class (confusion-matrix) engine configuration.

use std::time::Duration;

use jury_jq::{
    BucketCount, BucketJqConfig, JqEngine, MultiClassBucketConfig, MultiClassIncrementalConfig,
};
use jury_selection::{
    AnnealingConfig, ParallelPolicy, RestartConfig, TabuConfig,
    DEFAULT_MULTICLASS_SESSION_POOL_CUTOFF,
};

/// How [`crate::JuryService::budget_quality_table`] (and its multi-class
/// sibling) serves pools beyond the exact cutoff — the **sweep policy**.
///
/// This enum unifies what used to be independent boolean knobs
/// (`warm_sweeps`, and the warm-annealing follow-up that would have been a
/// second flag): every variant is a valid policy, so no combination of
/// switches can contradict itself — the validation is the type. Pools within
/// the exact cutoff always use the cold exhaustive path regardless of the
/// policy, because those tables are provably optimal.
///
/// * [`Cold`](SweepPolicy::Cold) — solve every budget independently through
///   the batched request path. The most expensive and the reference
///   behaviour (one full heuristic search per budget).
/// * [`WarmMarginal`](SweepPolicy::WarmMarginal) — carry one marginal-gain
///   search state (and one incremental JQ session) across ascending budgets
///   ([`jury_selection::BudgetQualityTable::build_warm`]); each budget step
///   only pushes the marginal workers. Fastest; on heterogeneous costs the
///   carried jury may trail a cold solve because the sweep never un-commits
///   a worker. The default.
/// * [`WarmAnnealing`](SweepPolicy::WarmAnnealing) — seed each budget's
///   annealing run with the previous budget's jury
///   ([`jury_selection::BudgetQualityTable::build_warm_annealing`]).
///   Quality-critical sweeps: the search can still restructure the jury
///   (un-commit cheap workers for an expensive one), while the carried seed
///   keeps it from re-solving cold and makes rows monotone by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepPolicy {
    /// Solve every budget independently (cold), through the batch path.
    Cold,
    /// Warm-started marginal-gain sweep across ascending budgets.
    WarmMarginal,
    /// Warm-started annealing sweep: budget `b + 1` seeded with the
    /// budget-`b` jury.
    WarmAnnealing,
}

/// What [`crate::JuryService::select_batch`] (and the other batch entry
/// points) does with a request that arrives while
/// [`ServiceConfig::max_in_flight`] requests are already being served.
///
/// The admission gate never blocks and never queues unboundedly: an
/// over-capacity request is either rejected immediately or served in a
/// cheaper mode, so a batch can not hang behind a stuck solver.
///
/// ```
/// use jury_service::{OverloadPolicy, ServiceConfig};
///
/// // Shed: over-capacity slots come back as `ServiceError::Overloaded`.
/// let shedding = ServiceConfig::fast().with_max_in_flight(2);
/// assert_eq!(shedding.overload, OverloadPolicy::Shed);
///
/// // Coarsen: over-capacity requests are served with the greedy solver.
/// let coarsening = shedding.with_overload_policy(OverloadPolicy::Coarsen);
/// assert_eq!(coarsening.overload, OverloadPolicy::Coarsen);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverloadPolicy {
    /// Reject over-capacity requests with
    /// [`crate::ServiceError::Overloaded`] — load shedding. The default:
    /// callers that care can retry, and nothing silently degrades.
    Shed,
    /// Serve over-capacity requests anyway, but downgrade their solver
    /// policy to [`crate::SolverPolicy::Greedy`] — a bounded-work search
    /// whose jury never falls below the greedy floor. The response's
    /// `policy` field records the downgrade.
    Coarsen,
}

/// Configuration of a [`crate::JuryService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Bucket configuration for the approximate JQ(BV) computation.
    pub bucket: BucketJqConfig,
    /// Simulated-annealing configuration for the JSP search.
    pub annealing: AnnealingConfig,
    /// Tabu-search configuration for the portfolio's
    /// [`jury_selection::TabuSolver`] member.
    pub tabu: TabuConfig,
    /// Randomized-restart configuration for the portfolio's
    /// [`jury_selection::RestartSolver`] member.
    pub restart: RestartConfig,
    /// A service-wide wall-clock ceiling applied to every request: merged
    /// with any per-request deadline **tightest-wins** (via
    /// [`jury_selection::SearchBudget::intersect`]). `None` (the default)
    /// imposes no service-side deadline.
    pub default_deadline: Option<Duration>,
    /// A service-wide objective-evaluation ceiling applied to every
    /// request, merged with any per-request cap tightest-wins. `None` (the
    /// default) imposes no service-side cap.
    pub default_max_evaluations: Option<u64>,
    /// Pools of at most this size are solved exactly by enumeration instead
    /// of by annealing (under [`crate::SolverPolicy::Auto`]); juries of at
    /// most this size also use exact JQ enumeration inside the engine.
    pub exact_cutoff: usize,
    /// Maximum number of memoized JQ evaluations kept in the service's
    /// shared cache; `0` disables caching. When the cache fills up, the
    /// stalest half of the entries (segmented LRU by last-used stamp) is
    /// evicted, so hot entries survive overflow. Binary and multi-class
    /// evaluations share this one store (their signature key spaces are
    /// disjoint); [`crate::CacheStats`] reports per-kind counters.
    pub cache_capacity: usize,
    /// Number of stripes the shared JQ store is split into. Each cache key
    /// hashes deterministically to one stripe with its own lock and
    /// counters, so batch worker threads touching different keys do not
    /// contend; `1` restores the historical single-lock store, `0` is
    /// promoted to `1`.
    pub cache_shards: usize,
    /// Worker threads used by [`crate::JuryService::select_batch`] and the
    /// other batch entry points; `0` means one per available CPU core.
    pub batch_threads: usize,
    /// OS threads a *single* solve may use: the portfolio races its
    /// members on scoped threads and the greedy fallback parallelizes its
    /// probe rounds. `1` (the default) is the sequential solver,
    /// bit-identical to the pre-parallel service; `0` means one per
    /// available CPU core. **Batch parallelism has priority**: a batch
    /// already running more than one worker thread serves each slot's
    /// solver sequentially, so the two levels never oversubscribe the
    /// machine (`batch_threads × solver_threads` stays bounded by the
    /// larger of the two knobs).
    pub solver_threads: usize,
    /// Maximum requests the batch entry points serve concurrently before
    /// the [`OverloadPolicy`] kicks in; `0` disables admission control
    /// entirely (every request is served at full fidelity).
    pub max_in_flight: usize,
    /// What happens to batch requests that arrive over
    /// [`max_in_flight`](Self::max_in_flight) capacity.
    pub overload: OverloadPolicy,
    /// The budget–quality sweep policy for pools beyond the exact cutoff
    /// (see [`SweepPolicy`]). Pools within the cutoff always use the cold
    /// exhaustive path.
    pub sweep: SweepPolicy,
    /// Scratch bucket configuration for batch evaluations of the
    /// multi-class (Section 7) objective.
    pub multiclass_bucket: MultiClassBucketConfig,
    /// Incremental-engine configuration for multi-class search sessions,
    /// including the dense-box `max_cells` budget that guards against
    /// exponential grids.
    pub multiclass_incremental: MultiClassIncrementalConfig,
    /// Multi-class pools of at most this many candidates run their searches
    /// on the sparse scratch DP instead of incremental sessions (the
    /// measured crossover; see
    /// [`jury_selection::DEFAULT_MULTICLASS_SESSION_POOL_CUTOFF`]).
    pub multiclass_session_cutoff: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            bucket: BucketJqConfig::default(),
            annealing: AnnealingConfig::default(),
            tabu: TabuConfig::default(),
            restart: RestartConfig::default(),
            default_deadline: None,
            default_max_evaluations: None,
            exact_cutoff: 14,
            cache_capacity: 1 << 20,
            cache_shards: 8,
            batch_threads: 0,
            solver_threads: 1,
            max_in_flight: 0,
            overload: OverloadPolicy::Shed,
            sweep: SweepPolicy::WarmMarginal,
            multiclass_bucket: MultiClassBucketConfig::default(),
            multiclass_incremental: MultiClassIncrementalConfig::default(),
            multiclass_session_cutoff: DEFAULT_MULTICLASS_SESSION_POOL_CUTOFF,
        }
    }
}

impl ServiceConfig {
    /// The configuration used to reproduce the paper's experiments:
    /// `numBuckets = 50` for JQ estimation and `ε = 10⁻⁸` for the annealing.
    pub fn paper_experiments() -> Self {
        ServiceConfig {
            bucket: BucketJqConfig::paper_experiments(),
            ..ServiceConfig::default()
        }
    }

    /// A fast configuration for unit tests and examples: coarser buckets and
    /// a shorter annealing schedule.
    pub fn fast() -> Self {
        ServiceConfig {
            bucket: BucketJqConfig::default().with_buckets(BucketCount::Fixed(50)),
            annealing: AnnealingConfig::default()
                .with_epsilon(1e-4)
                .with_restarts(2),
            exact_cutoff: 12,
            multiclass_bucket: MultiClassBucketConfig { num_buckets: 50 },
            ..ServiceConfig::default()
        }
    }

    /// Sets the bucket configuration.
    pub fn with_bucket(mut self, bucket: BucketJqConfig) -> Self {
        self.bucket = bucket;
        self
    }

    /// Sets the annealing configuration.
    pub fn with_annealing(mut self, annealing: AnnealingConfig) -> Self {
        self.annealing = annealing;
        self
    }

    /// Sets the tabu-search configuration (the portfolio's tabu member).
    pub fn with_tabu(mut self, tabu: TabuConfig) -> Self {
        self.tabu = tabu;
        self
    }

    /// Sets the randomized-restart configuration (the portfolio's restart
    /// member).
    pub fn with_restart(mut self, restart: RestartConfig) -> Self {
        self.restart = restart;
        self
    }

    /// Sets (or clears) the service-wide default deadline; it merges with
    /// any per-request deadline tightest-wins.
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Sets (or clears) the service-wide default evaluation cap; it merges
    /// with any per-request cap tightest-wins.
    pub fn with_default_evaluation_limit(mut self, max_evaluations: Option<u64>) -> Self {
        self.default_max_evaluations = max_evaluations;
        self
    }

    /// Sets the exact-enumeration cutoff.
    pub fn with_exact_cutoff(mut self, cutoff: usize) -> Self {
        self.exact_cutoff = cutoff;
        self
    }

    /// Sets the JQ cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the JQ cache shard count (`0` is promoted to 1, the single-lock
    /// store).
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Sets the batch thread count (`0` = one per CPU core).
    pub fn with_batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = threads;
        self
    }

    /// Sets the per-solve thread count (see
    /// [`solver_threads`](Self::solver_threads); `1` = sequential,
    /// `0` = one per CPU core).
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = threads;
        self
    }

    /// Routes **both** levels of parallelism through one knob: batch slots
    /// and single-solve lanes each get `threads` workers (`0` = one per
    /// CPU core). The batch > solver priority still applies — when a batch
    /// actually fans out, its slots solve sequentially — so this sets "how
    /// many cores may this service use" regardless of which level the work
    /// arrives at.
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.batch_threads = threads;
        self.solver_threads = threads;
        self
    }

    /// The [`jury_selection::ParallelPolicy`] induced by
    /// [`solver_threads`](Self::solver_threads).
    pub fn solver_parallelism(&self) -> ParallelPolicy {
        match self.solver_threads {
            1 => ParallelPolicy::Sequential,
            n => ParallelPolicy::Threads(n),
        }
    }

    /// Sets the concurrent-request admission limit for the batch entry
    /// points (`0` disables admission control).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Sets the overload policy applied to requests over the
    /// [`max_in_flight`](Self::max_in_flight) limit.
    pub fn with_overload_policy(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// Sets the budget–quality sweep policy.
    pub fn with_sweep_policy(mut self, sweep: SweepPolicy) -> Self {
        self.sweep = sweep;
        self
    }

    /// Sets the multi-class scratch bucket configuration.
    pub fn with_multiclass_bucket(mut self, bucket: MultiClassBucketConfig) -> Self {
        self.multiclass_bucket = bucket;
        self
    }

    /// Sets the multi-class incremental-engine configuration.
    pub fn with_multiclass_incremental(mut self, incremental: MultiClassIncrementalConfig) -> Self {
        self.multiclass_incremental = incremental;
        self
    }

    /// Sets the multi-class session crossover cutoff.
    pub fn with_multiclass_session_cutoff(mut self, cutoff: usize) -> Self {
        self.multiclass_session_cutoff = cutoff;
        self
    }

    /// Whether the sweep policy warm-starts large-pool budget tables.
    pub fn warm_sweeps(&self) -> bool {
        self.sweep != SweepPolicy::Cold
    }

    /// The JQ engine this configuration induces.
    pub fn jq_engine(&self) -> JqEngine {
        JqEngine::new(self.bucket).with_exact_cutoff(self.exact_cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ServiceConfig::default();
        assert!(config.exact_cutoff >= 10);
        assert!(config.annealing.restarts >= 1);
        assert!(config.cache_capacity > 0);
        assert_eq!(config.cache_shards, 8);
        assert_eq!(config.batch_threads, 0);
        assert_eq!(
            config.solver_threads, 1,
            "single solves default to the sequential (bit-identical) path"
        );
        assert_eq!(config.solver_parallelism(), ParallelPolicy::Sequential);
        assert_eq!(config.max_in_flight, 0, "admission control defaults off");
        assert_eq!(config.overload, OverloadPolicy::Shed);
        assert_eq!(config.sweep, SweepPolicy::WarmMarginal);
        assert!(config.warm_sweeps());
        assert!(config.default_deadline.is_none());
        assert!(config.default_max_evaluations.is_none());
        assert_eq!(config.tabu, TabuConfig::default());
        assert_eq!(config.restart, RestartConfig::default());
        assert_eq!(
            config.multiclass_session_cutoff,
            DEFAULT_MULTICLASS_SESSION_POOL_CUTOFF
        );
    }

    #[test]
    fn builders_update_fields() {
        let config = ServiceConfig::default()
            .with_exact_cutoff(5)
            .with_bucket(BucketJqConfig::paper_experiments())
            .with_annealing(AnnealingConfig::default().with_seed(9))
            .with_cache_capacity(128)
            .with_cache_shards(2)
            .with_batch_threads(2)
            .with_solver_threads(3)
            .with_max_in_flight(4)
            .with_overload_policy(OverloadPolicy::Coarsen)
            .with_sweep_policy(SweepPolicy::Cold)
            .with_multiclass_bucket(MultiClassBucketConfig { num_buckets: 77 })
            .with_multiclass_incremental(
                MultiClassIncrementalConfig::default().with_max_cells(1 << 10),
            )
            .with_multiclass_session_cutoff(9)
            .with_tabu(TabuConfig::default().with_tenure(3))
            .with_restart(RestartConfig::default().with_restarts(7))
            .with_default_deadline(Some(Duration::from_millis(250)))
            .with_default_evaluation_limit(Some(10_000));
        assert_eq!(config.exact_cutoff, 5);
        assert_eq!(config.tabu.tenure, 3);
        assert_eq!(config.restart.restarts, 7);
        assert_eq!(config.default_deadline, Some(Duration::from_millis(250)));
        assert_eq!(config.default_max_evaluations, Some(10_000));
        assert_eq!(config.annealing.seed, 9);
        assert_eq!(config.bucket, BucketJqConfig::paper_experiments());
        assert_eq!(config.cache_capacity, 128);
        assert_eq!(config.cache_shards, 2);
        assert_eq!(config.batch_threads, 2);
        assert_eq!(config.solver_threads, 3);
        assert_eq!(config.solver_parallelism(), ParallelPolicy::Threads(3));
        assert_eq!(config.max_in_flight, 4);
        assert_eq!(config.overload, OverloadPolicy::Coarsen);
        assert_eq!(config.sweep, SweepPolicy::Cold);
        assert!(!config.warm_sweeps());
        assert_eq!(config.multiclass_bucket.num_buckets, 77);
        assert_eq!(config.multiclass_incremental.max_cells, 1 << 10);
        assert_eq!(config.multiclass_session_cutoff, 9);
    }

    #[test]
    fn worker_threads_set_both_levels() {
        let config = ServiceConfig::default().with_worker_threads(4);
        assert_eq!(config.batch_threads, 4);
        assert_eq!(config.solver_threads, 4);
        assert_eq!(config.solver_parallelism(), ParallelPolicy::Threads(4));

        let per_core = ServiceConfig::default().with_worker_threads(0);
        assert_eq!(per_core.batch_threads, 0);
        assert_eq!(per_core.solver_threads, 0);
        assert_eq!(per_core.solver_parallelism(), ParallelPolicy::Threads(0));
    }

    #[test]
    fn paper_and_fast_presets_differ() {
        assert_ne!(
            ServiceConfig::paper_experiments().annealing.epsilon,
            ServiceConfig::fast().annealing.epsilon
        );
    }
}
