//! Service configuration: the knobs shared by every request, overridable
//! per request via [`crate::SelectionRequest::with_config`].
//!
//! This type subsumes the old `jury_optjs::SystemConfig` (which is now a
//! re-export of it): the same bucket/annealing/cutoff knobs drive both the
//! OPTJS and MVJS strategies, plus the service-level batch and cache
//! settings.

use jury_jq::{BucketCount, BucketJqConfig, JqEngine};
use jury_selection::AnnealingConfig;

/// Configuration of a [`crate::JuryService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Bucket configuration for the approximate JQ(BV) computation.
    pub bucket: BucketJqConfig,
    /// Simulated-annealing configuration for the JSP search.
    pub annealing: AnnealingConfig,
    /// Pools of at most this size are solved exactly by enumeration instead
    /// of by annealing (under [`crate::SolverPolicy::Auto`]); juries of at
    /// most this size also use exact JQ enumeration inside the engine.
    pub exact_cutoff: usize,
    /// Maximum number of memoized JQ evaluations kept in the service's
    /// shared cache; `0` disables caching. When the cache fills up, the
    /// stalest half of the entries (segmented LRU by last-used stamp) is
    /// evicted, so hot entries survive overflow.
    pub cache_capacity: usize,
    /// Worker threads used by [`crate::JuryService::select_batch`];
    /// `0` means one per available CPU core.
    pub batch_threads: usize,
    /// Whether [`crate::JuryService::budget_quality_table`] may serve large
    /// pools with a warm-started sweep — one incremental search state
    /// carried from each budget to the next — instead of solving every
    /// budget cold through the batch path. Pools within the exact cutoff
    /// always use the cold (exhaustive) path regardless of this flag.
    pub warm_sweeps: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            bucket: BucketJqConfig::default(),
            annealing: AnnealingConfig::default(),
            exact_cutoff: 14,
            cache_capacity: 1 << 20,
            batch_threads: 0,
            warm_sweeps: true,
        }
    }
}

impl ServiceConfig {
    /// The configuration used to reproduce the paper's experiments:
    /// `numBuckets = 50` for JQ estimation and `ε = 10⁻⁸` for the annealing.
    pub fn paper_experiments() -> Self {
        ServiceConfig {
            bucket: BucketJqConfig::paper_experiments(),
            ..ServiceConfig::default()
        }
    }

    /// A fast configuration for unit tests and examples: coarser buckets and
    /// a shorter annealing schedule.
    pub fn fast() -> Self {
        ServiceConfig {
            bucket: BucketJqConfig::default().with_buckets(BucketCount::Fixed(50)),
            annealing: AnnealingConfig::default()
                .with_epsilon(1e-4)
                .with_restarts(2),
            exact_cutoff: 12,
            ..ServiceConfig::default()
        }
    }

    /// Sets the bucket configuration.
    pub fn with_bucket(mut self, bucket: BucketJqConfig) -> Self {
        self.bucket = bucket;
        self
    }

    /// Sets the annealing configuration.
    pub fn with_annealing(mut self, annealing: AnnealingConfig) -> Self {
        self.annealing = annealing;
        self
    }

    /// Sets the exact-enumeration cutoff.
    pub fn with_exact_cutoff(mut self, cutoff: usize) -> Self {
        self.exact_cutoff = cutoff;
        self
    }

    /// Sets the JQ cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the batch thread count (`0` = one per CPU core).
    pub fn with_batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = threads;
        self
    }

    /// Enables or disables warm-started budget–quality sweeps.
    pub fn with_warm_sweeps(mut self, enabled: bool) -> Self {
        self.warm_sweeps = enabled;
        self
    }

    /// The JQ engine this configuration induces.
    pub fn jq_engine(&self) -> JqEngine {
        JqEngine::new(self.bucket).with_exact_cutoff(self.exact_cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ServiceConfig::default();
        assert!(config.exact_cutoff >= 10);
        assert!(config.annealing.restarts >= 1);
        assert!(config.cache_capacity > 0);
        assert_eq!(config.batch_threads, 0);
    }

    #[test]
    fn builders_update_fields() {
        let config = ServiceConfig::default()
            .with_exact_cutoff(5)
            .with_bucket(BucketJqConfig::paper_experiments())
            .with_annealing(AnnealingConfig::default().with_seed(9))
            .with_cache_capacity(128)
            .with_batch_threads(2)
            .with_warm_sweeps(false);
        assert_eq!(config.exact_cutoff, 5);
        assert_eq!(config.annealing.seed, 9);
        assert_eq!(config.bucket, BucketJqConfig::paper_experiments());
        assert_eq!(config.cache_capacity, 128);
        assert_eq!(config.batch_threads, 2);
        assert!(!config.warm_sweeps);
        assert!(ServiceConfig::default().warm_sweeps);
    }

    #[test]
    fn paper_and_fast_presets_differ() {
        assert_ne!(
            ServiceConfig::paper_experiments().annealing.epsilon,
            ServiceConfig::fast().annealing.epsilon
        );
    }
}
