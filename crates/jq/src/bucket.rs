//! The bucket-based approximation of `JQ(J, BV, α)` — Algorithm 1 of the
//! paper, with the Algorithm 2 pruning and the Theorem 3 prior folding.
//!
//! Computing the jury quality of Bayesian voting exactly is NP-hard
//! (Theorem 2): the sign of `R(V) = ln Pr(V|t=0) − ln Pr(V|t=1)` must be
//! known for every voting `V`, and the set of achievable `R` values is
//! exponential. The approximation quantizes each worker's log-odds
//! `φ(q_i) = ln(q_i / (1 − q_i))` to an integer bucket `b_i` and then runs an
//! iterative subset-sum style dynamic program over `(key, prob)` pairs, where
//! `key` is the bucketed value of `R(V)` and `prob` aggregates
//! `e^{u(V)} = Pr(V | t = 0)` over all votings sharing that key. The result
//! is
//!
//! `ĴQ = Σ_{key > 0} prob + ½ Σ_{key = 0} prob`,
//!
//! with additive error below `e^{n·δ/4} − 1` (Section 4.4), i.e. below 1 %
//! for `numBuckets = 200·n`.
//!
//! The `(key, prob)` map is stored as a *dense*, offset-indexed `Vec<f64>`
//! over the reachable key range `[-Σb_i, +Σb_i]` rather than a hash map:
//! the subset-sum keys quickly cover most of that range anyway, and the flat
//! array turns the inner loop into cache-friendly, branch-light streaming
//! adds that the compiler can autovectorize. The same dense representation
//! is what [`crate::incremental`] updates in place for the solvers' hot
//! path.

use jury_model::{log_odds, Jury, Prior};

use crate::bounds;
use crate::kernel::{fmadd, KernelMode};
use crate::prior::fold_prior;
use crate::prune::{aggregate_buckets, prune, PruneDecision, PruneStats};

/// How many buckets Algorithm 1 should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BucketCount {
    /// A fixed total number of buckets (the experiments of Section 6 use 50).
    Fixed(usize),
    /// `d` buckets per jury member (`numBuckets = d · n`), the setting of the
    /// error-bound analysis; `d ≥ 200` guarantees a sub-1 % error.
    PerWorker(usize),
}

impl BucketCount {
    /// Resolves the total bucket count for a jury of `n` workers.
    pub fn resolve(self, jury_size: usize) -> usize {
        match self {
            BucketCount::Fixed(k) => k.max(1),
            BucketCount::PerWorker(d) => (d * jury_size.max(1)).max(1),
        }
    }
}

/// Configuration of the bucket-based estimator.
///
/// `Hash`/`Eq` so that the configuration can participate in cache keys:
/// JQ values computed under different bucket settings are different numbers
/// and must never be conflated by a memoization layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BucketJqConfig {
    /// Number of buckets.
    pub buckets: BucketCount,
    /// Whether to apply the Algorithm 2 pruning (on by default; turning it
    /// off is only useful for the Figure 9(d) ablation).
    pub use_pruning: bool,
    /// Whether to apply the Section 4.4 shortcut: if some worker has
    /// (effective) quality above 0.99, return that quality directly, since
    /// the true JQ is already in `(0.99, 1]`.
    pub high_quality_shortcut: bool,
    /// Which implementation of the dense DP inner loop to run: the
    /// vectorized segmented passes or the scalar reference loop (see
    /// [`KernelMode`]). Participates in `Hash`/`Eq` like every other knob,
    /// so values computed under different kernels get distinct cache keys.
    pub kernel: KernelMode,
}

impl Default for BucketJqConfig {
    fn default() -> Self {
        BucketJqConfig {
            buckets: BucketCount::PerWorker(bounds::PAPER_RECOMMENDED_MULTIPLIER),
            use_pruning: true,
            high_quality_shortcut: true,
            kernel: KernelMode::default(),
        }
    }
}

impl BucketJqConfig {
    /// The configuration used throughout the paper's experiments
    /// (`numBuckets = 50`, pruning on).
    pub fn paper_experiments() -> Self {
        BucketJqConfig {
            buckets: BucketCount::Fixed(50),
            use_pruning: true,
            high_quality_shortcut: true,
            kernel: KernelMode::default(),
        }
    }

    /// Sets the bucket count.
    pub fn with_buckets(mut self, buckets: BucketCount) -> Self {
        self.buckets = buckets;
        self
    }

    /// Enables or disables pruning.
    pub fn with_pruning(mut self, use_pruning: bool) -> Self {
        self.use_pruning = use_pruning;
        self
    }

    /// Enables or disables the high-quality shortcut.
    pub fn with_high_quality_shortcut(mut self, enabled: bool) -> Self {
        self.high_quality_shortcut = enabled;
        self
    }

    /// Selects the kernel implementation (vectorized vs scalar reference).
    pub fn with_kernel_mode(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }
}

/// Maps a log-odds weight `φ` to its nearest bucket index on a grid of width
/// `bucket_size` — the `GetBucketArray` rounding of Algorithm 1. A
/// non-positive grid width collapses everything to bucket 0 (the degenerate
/// all-coin-flips jury). Shared by the scratch estimator and the
/// [`crate::incremental`] engine so both quantize identically.
#[inline]
pub fn bucket_index(phi: f64, bucket_size: f64) -> i64 {
    if bucket_size > 0.0 {
        ((phi / bucket_size - 0.5).ceil() as i64).max(0)
    } else {
        0
    }
}

/// The result of one bucket-based JQ estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct JqEstimate {
    /// The estimated jury quality `ĴQ ∈ [0, 1]`.
    pub value: f64,
    /// The total number of buckets used.
    pub num_buckets: usize,
    /// The bucket width `δ`.
    pub bucket_size: f64,
    /// The a-priori additive error bound `e^{n·δ/4} − 1` for this run
    /// (0 when the exact shortcut applied).
    pub error_bound: f64,
    /// Pruning counters (all zeros when pruning is disabled).
    pub prune_stats: PruneStats,
    /// The largest number of occupied (non-zero) keys held at any iteration
    /// of the dense dynamic program.
    pub max_map_entries: usize,
    /// Whether the high-quality shortcut produced the value.
    pub used_shortcut: bool,
}

/// The bucket-based estimator of `JQ(J, BV, α)`.
///
/// The estimator holds only its (plain-old-data) configuration, so it is
/// `Copy`: engine handles can be duplicated freely — e.g. one per batch
/// worker thread — without sharing or synchronization.
#[derive(Debug, Clone, Copy, Default)]
pub struct BucketJqEstimator {
    config: BucketJqConfig,
}

impl BucketJqEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: BucketJqConfig) -> Self {
        BucketJqEstimator { config }
    }

    /// Creates an estimator with the paper's experimental configuration
    /// (`numBuckets = 50`).
    pub fn paper_experiments() -> Self {
        BucketJqEstimator::new(BucketJqConfig::paper_experiments())
    }

    /// The configuration.
    pub fn config(&self) -> &BucketJqConfig {
        &self.config
    }

    /// Estimates `JQ(J, BV, α)`, returning the value only.
    pub fn jq(&self, jury: &Jury, prior: Prior) -> f64 {
        self.estimate(jury, prior).value
    }

    /// Estimates `JQ(J, BV, α)` with full diagnostics.
    ///
    /// The prior is folded into the jury as a pseudo-worker (Theorem 3), so
    /// the core loop always runs under `α = 0.5`.
    pub fn estimate(&self, jury: &Jury, prior: Prior) -> JqEstimate {
        let folded = fold_prior(jury, prior);
        // The low-quality reinterpretation of Section 3.3: every worker is
        // replaced by an effective worker with quality max(q, 1 − q) ≥ 0.5.
        let qualities = folded.effective_qualities();
        let n = qualities.len();

        // Section 4.4 shortcut: a near-perfect worker pins JQ into (0.99, 1].
        if self.config.high_quality_shortcut {
            if let Some(best) = qualities
                .iter()
                .copied()
                .fold(None::<f64>, |acc, q| Some(acc.map_or(q, |a| a.max(q))))
            {
                if best > 0.99 {
                    return JqEstimate {
                        value: best,
                        num_buckets: 0,
                        bucket_size: 0.0,
                        error_bound: 1.0 - best,
                        prune_stats: PruneStats::default(),
                        max_map_entries: 0,
                        used_shortcut: true,
                    };
                }
            }
        }

        let phis: Vec<f64> = qualities.iter().map(|&q| log_odds(q)).collect();
        let upper = phis.iter().cloned().fold(0.0f64, f64::max);
        let num_buckets = self.config.buckets.resolve(n);
        let bucket_size = if upper > 0.0 {
            upper / num_buckets as f64
        } else {
            0.0
        };

        // GetBucketArray: map each φ(q_i) to its nearest bucket index.
        let mut indexed: Vec<(i64, f64)> = phis
            .iter()
            .zip(qualities.iter())
            .map(|(&phi, &q)| (bucket_index(phi, bucket_size), q))
            .collect();
        // Sort by decreasing bucket so pruning sees the large weights first.
        indexed.sort_by_key(|&(bucket, _)| std::cmp::Reverse(bucket));
        let buckets: Vec<i64> = indexed.iter().map(|&(b, _)| b).collect();
        let aggregate = aggregate_buckets(&buckets);

        // Dense subset-sum state over the reachable key range [-total, total],
        // stored offset-indexed: slot `offset + key` holds the probability
        // mass of `key`. The double-buffered arrays replace the historical
        // `HashMap<i64, f64>` — every iteration streams over the currently
        // reachable window instead of chasing hash entries.
        let total: i64 = buckets.iter().sum();
        let offset = total as usize;
        let mut current = vec![0.0f64; 2 * offset + 1];
        let mut next = vec![0.0f64; 2 * offset + 1];
        current[offset] = 1.0;

        let mut estimate = 0.0f64;
        let mut stats = PruneStats::default();
        let mut max_map_entries = 1usize;
        // Largest |key| with possible mass in `current`; grows by one bucket
        // per processed worker (the prefix sums of the sorted bucket array).
        let mut reach = 0usize;

        for (i, &(bucket, quality)) in indexed.iter().enumerate() {
            let remaining = aggregate[i];
            let step = bucket as usize;
            let window = (offset - reach, offset + reach);
            let occupied = match self.config.kernel {
                KernelMode::Vectorized => vectorized_worker_pass(
                    &mut current,
                    &mut next,
                    window,
                    step,
                    quality,
                    remaining,
                    self.config.use_pruning,
                    &mut estimate,
                    &mut stats,
                ),
                KernelMode::ScalarReference => scalar_worker_pass(
                    &mut current,
                    &mut next,
                    window,
                    total,
                    step,
                    quality,
                    remaining,
                    self.config.use_pruning,
                    &mut estimate,
                    &mut stats,
                ),
            };
            max_map_entries = max_map_entries.max(occupied);
            reach = (reach + step).min(offset);
            std::mem::swap(&mut current, &mut next);
        }

        // `current` now holds the undecided mass; everything strictly above
        // key 0 counts fully, the tie at key 0 counts half (Algorithm 1).
        estimate += current[offset + 1..].iter().sum::<f64>();
        estimate += 0.5 * current[offset];

        JqEstimate {
            value: estimate.clamp(0.0, 1.0),
            num_buckets,
            bucket_size,
            error_bound: bounds::error_bound(n, bucket_size),
            prune_stats: stats,
            max_map_entries,
            used_shortcut: false,
        }
    }
}

/// One worker's expansion of the dense DP — the original element-at-a-time
/// reference loop: per cell, prune, then scatter the up/down contributions.
/// Returns the number of `next` cells that became occupied.
#[allow(clippy::too_many_arguments)]
fn scalar_worker_pass(
    current: &mut [f64],
    next: &mut [f64],
    (w_lo, w_hi): (usize, usize),
    total: i64,
    step: usize,
    quality: f64,
    remaining: i64,
    use_pruning: bool,
    estimate: &mut f64,
    stats: &mut PruneStats,
) -> usize {
    let mut occupied = 0usize;
    for idx in w_lo..=w_hi {
        let prob = current[idx];
        if prob == 0.0 {
            continue;
        }
        current[idx] = 0.0;
        let key = idx as i64 - total;
        if use_pruning {
            match prune(key, remaining) {
                PruneDecision::TakeAll => {
                    *estimate += prob;
                    stats.taken_all += 1;
                    continue;
                }
                PruneDecision::TakeNone => {
                    stats.taken_none += 1;
                    continue;
                }
                PruneDecision::Continue => {}
            }
        }
        stats.expanded += 1;
        // Vote v_i = 0 supports t = 0: key moves up, weighted by q_i.
        let up = prob * quality;
        if up > 0.0 {
            if next[idx + step] == 0.0 {
                occupied += 1;
            }
            next[idx + step] += up;
        }
        // Vote v_i = 1: key moves down, weighted by 1 − q_i.
        let down = prob * (1.0 - quality);
        if down > 0.0 {
            if next[idx - step] == 0.0 {
                occupied += 1;
            }
            next[idx - step] += down;
        }
    }
    occupied
}

/// Vectorized form of [`scalar_worker_pass`]. The Algorithm 2 prune regions
/// are *contiguous* in the offset-indexed layout — `TakeNone` is exactly the
/// keys below `-remaining` (low indices), `TakeAll` exactly the keys above
/// `remaining` (high indices) — so instead of a per-cell branch the window
/// splits into three segments handled by dedicated loops, and the Continue
/// middle becomes two shifted multiply-accumulate slice passes over `next`.
///
/// Bit-compatibility with the reference: each `next` cell receives its
/// up-term (from `idx − step`, visited earlier by the scalar loop) before
/// its down-term, which is exactly the pass order here, and IEEE-754
/// addition of the same terms in the same order is deterministic. Occupancy
/// is counted after the fact — `next` starts all-zero each iteration and
/// contributions are positive, so "cells that transitioned to non-zero"
/// equals "non-zero cells of the grown window".
#[allow(clippy::too_many_arguments)]
fn vectorized_worker_pass(
    current: &mut [f64],
    next: &mut [f64],
    (w_lo, w_hi): (usize, usize),
    step: usize,
    quality: f64,
    remaining: i64,
    use_pruning: bool,
    estimate: &mut f64,
    stats: &mut PruneStats,
) -> usize {
    let offset = (current.len() - 1) / 2;
    // Segment boundaries: [w_lo, none_end) is TakeNone, [all_start, w_hi]
    // is TakeAll, the middle continues. Without pruning everything continues.
    let (none_end, all_start) = if use_pruning {
        let span = (w_lo as i64, w_hi as i64 + 1);
        let none_end = (offset as i64 - remaining).clamp(span.0, span.1) as usize;
        let all_start = (offset as i64 + remaining + 1).clamp(span.0, span.1) as usize;
        (none_end, all_start)
    } else {
        (w_lo, w_hi + 1)
    };
    for &prob in &current[w_lo..none_end] {
        if prob != 0.0 {
            stats.taken_none += 1;
        }
    }
    for &prob in &current[all_start..=w_hi] {
        if prob != 0.0 {
            *estimate += prob;
            stats.taken_all += 1;
        }
    }
    if none_end < all_start {
        let src = &current[none_end..all_start];
        for (o, &p) in next[none_end + step..all_start + step].iter_mut().zip(src) {
            *o = fmadd(p, quality, *o);
        }
        let one_minus = 1.0 - quality;
        for (o, &p) in next[none_end - step..all_start - step].iter_mut().zip(src) {
            *o = fmadd(p, one_minus, *o);
        }
        stats.expanded += src.iter().filter(|&&p| p != 0.0).count() as u64;
    }
    current[w_lo..=w_hi].fill(0.0);
    next[w_lo.saturating_sub(step)..=(w_hi + step).min(next.len() - 1)]
        .iter()
        .filter(|&&p| p != 0.0)
        .count()
}

/// Convenience function: estimates `JQ(J, BV, α)` with the default
/// configuration (per-worker bucket multiplier 200, pruning on).
pub fn bv_jq(jury: &Jury, prior: Prior) -> f64 {
    BucketJqEstimator::default().jq(jury, prior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_bv_jq;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_close(a: f64, b: f64, tol: f64, context: &str) {
        assert!((a - b).abs() <= tol, "{context}: {a} vs {b} (tol {tol})");
    }

    #[test]
    fn matches_example_3_exactly_enough() {
        // JQ(J, BV, 0.5) = 90 % for qualities 0.9, 0.6, 0.6.
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let est = BucketJqEstimator::default().estimate(&jury, Prior::uniform());
        assert_close(est.value, 0.9, 1e-3, "example 3");
        assert!(!est.used_shortcut);
        assert!(est.error_bound < 0.01);
    }

    #[test]
    fn paper_experiment_config_matches_exact_on_small_juries() {
        let estimator = BucketJqEstimator::paper_experiments();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..40 {
            let n = rng.gen_range(1..=9);
            let qualities: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..0.95)).collect();
            let jury = Jury::from_qualities(&qualities).unwrap();
            let exact = exact_bv_jq(&jury, Prior::uniform()).unwrap();
            let est = estimator.estimate(&jury, Prior::uniform());
            // numBuckets = 50 keeps the error well below a percent in
            // practice (Figure 9(c) reports a maximum of 0.01 %).
            assert_close(est.value, exact, 0.01, &format!("qualities {qualities:?}"));
        }
    }

    #[test]
    fn error_stays_within_the_theoretical_bound() {
        let mut rng = StdRng::seed_from_u64(13);
        for d in [10usize, 50, 200] {
            let estimator = BucketJqEstimator::new(
                BucketJqConfig::default()
                    .with_buckets(BucketCount::PerWorker(d))
                    .with_high_quality_shortcut(false),
            );
            for _ in 0..20 {
                let n = rng.gen_range(1..=8);
                let qualities: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..0.99)).collect();
                let jury = Jury::from_qualities(&qualities).unwrap();
                let exact = exact_bv_jq(&jury, Prior::uniform()).unwrap();
                let est = estimator.estimate(&jury, Prior::uniform());
                let err = (exact - est.value).abs();
                // Allow a hair of slack for floating-point noise on top of
                // the analytical bound.
                assert!(
                    err <= est.error_bound + 1e-9,
                    "error {err} exceeds bound {} for d={d}, qualities {qualities:?}",
                    est.error_bound
                );
            }
        }
    }

    #[test]
    fn pruning_does_not_change_the_estimate() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let n = rng.gen_range(1..=10);
            let qualities: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..0.98)).collect();
            let jury = Jury::from_qualities(&qualities).unwrap();
            let with = BucketJqEstimator::new(BucketJqConfig::paper_experiments())
                .estimate(&jury, Prior::uniform());
            let without =
                BucketJqEstimator::new(BucketJqConfig::paper_experiments().with_pruning(false))
                    .estimate(&jury, Prior::uniform());
            assert_close(
                with.value,
                without.value,
                1e-12,
                "pruning changed the value",
            );
            assert_eq!(
                without.prune_stats.taken_all + without.prune_stats.taken_none,
                0
            );
        }
    }

    #[test]
    fn pruning_actually_fires_on_large_juries() {
        let qualities: Vec<f64> = (0..60).map(|i| 0.55 + 0.4 * (i as f64 / 59.0)).collect();
        let jury = Jury::from_qualities(&qualities).unwrap();
        let est = BucketJqEstimator::new(BucketJqConfig::paper_experiments())
            .estimate(&jury, Prior::uniform());
        assert!(
            est.prune_stats.taken_all > 0,
            "expected TakeAll prunes: {:?}",
            est.prune_stats
        );
        assert!(est.value > 0.99);
    }

    #[test]
    fn prior_changes_the_estimate_consistently_with_exact() {
        let jury = Jury::from_qualities(&[0.6, 0.7, 0.65]).unwrap();
        for alpha in [0.1, 0.3, 0.7, 0.9] {
            let prior = Prior::new(alpha).unwrap();
            let exact = exact_bv_jq(&jury, prior).unwrap();
            let est = BucketJqEstimator::default().estimate(&jury, prior);
            assert_close(est.value, exact, 0.01, &format!("alpha {alpha}"));
        }
    }

    #[test]
    fn shortcut_on_near_perfect_workers() {
        let jury = Jury::from_qualities(&[0.995, 0.6]).unwrap();
        let est = BucketJqEstimator::default().estimate(&jury, Prior::uniform());
        assert!(est.used_shortcut);
        assert_close(est.value, 0.995, 1e-12, "shortcut value");
        // Without the shortcut the estimator still works and is at least as
        // large as the best single worker (monotonicity).
        let est2 =
            BucketJqEstimator::new(BucketJqConfig::default().with_high_quality_shortcut(false))
                .estimate(&jury, Prior::uniform());
        assert!(est2.value >= 0.995 - 0.01);
        assert!(!est2.used_shortcut);
    }

    #[test]
    fn all_random_workers_give_half() {
        let jury = Jury::from_qualities(&[0.5, 0.5, 0.5]).unwrap();
        let est = BucketJqEstimator::default().estimate(&jury, Prior::uniform());
        assert_close(est.value, 0.5, 1e-12, "coin-flip jury");
        assert_eq!(est.bucket_size, 0.0);
    }

    #[test]
    fn empty_jury_uniform_prior_is_half() {
        let est = BucketJqEstimator::default().estimate(&Jury::empty(), Prior::uniform());
        assert_close(est.value, 0.5, 1e-12, "empty jury");
    }

    #[test]
    fn adversarial_workers_are_reinterpreted() {
        // A 0.2-quality worker is exactly as useful as a 0.8-quality worker.
        let bad = Jury::from_qualities(&[0.2, 0.6]).unwrap();
        let good = Jury::from_qualities(&[0.8, 0.6]).unwrap();
        let est_bad = BucketJqEstimator::default().jq(&bad, Prior::uniform());
        let est_good = BucketJqEstimator::default().jq(&good, Prior::uniform());
        assert_close(est_bad, est_good, 1e-12, "reinterpretation");
        // And both agree with the exact value.
        let exact = exact_bv_jq(&good, Prior::uniform()).unwrap();
        assert_close(est_good, exact, 0.01, "vs exact");
    }

    #[test]
    fn fixed_vs_per_worker_bucket_resolution() {
        assert_eq!(BucketCount::Fixed(50).resolve(10), 50);
        assert_eq!(BucketCount::Fixed(0).resolve(10), 1);
        assert_eq!(BucketCount::PerWorker(200).resolve(10), 2000);
        assert_eq!(BucketCount::PerWorker(200).resolve(0), 200);
    }

    #[test]
    fn more_buckets_means_tighter_error_bound() {
        let jury = Jury::from_qualities(&[0.7; 8]).unwrap();
        let coarse =
            BucketJqEstimator::new(BucketJqConfig::default().with_buckets(BucketCount::Fixed(10)))
                .estimate(&jury, Prior::uniform());
        let fine =
            BucketJqEstimator::new(BucketJqConfig::default().with_buckets(BucketCount::Fixed(400)))
                .estimate(&jury, Prior::uniform());
        assert!(fine.error_bound < coarse.error_bound);
        let exact = exact_bv_jq(&jury, Prior::uniform()).unwrap();
        assert!((fine.value - exact).abs() <= (coarse.value - exact).abs() + 1e-9);
    }

    #[test]
    fn convenience_function_matches_estimator() {
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let a = bv_jq(&jury, Prior::uniform());
        let b = BucketJqEstimator::default().jq(&jury, Prior::uniform());
        assert_eq!(a, b);
    }

    #[test]
    fn kernel_modes_agree_exactly() {
        // The vectorized pass is a pure reordering-free restructuring of the
        // reference loop, so values, prune counters, and occupancy all match
        // — with and without pruning, across random juries.
        let mut rng = StdRng::seed_from_u64(29);
        for trial in 0..30 {
            let n = rng.gen_range(1..=40);
            let qualities: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..0.98)).collect();
            let jury = Jury::from_qualities(&qualities).unwrap();
            for pruning in [true, false] {
                let base = BucketJqConfig::paper_experiments()
                    .with_pruning(pruning)
                    .with_high_quality_shortcut(false);
                let fast = BucketJqEstimator::new(base).estimate(&jury, Prior::uniform());
                let slow =
                    BucketJqEstimator::new(base.with_kernel_mode(KernelMode::ScalarReference))
                        .estimate(&jury, Prior::uniform());
                assert!(
                    (fast.value - slow.value).abs() <= 1e-12,
                    "trial {trial} pruning {pruning}: vectorized {} vs scalar {}",
                    fast.value,
                    slow.value
                );
                assert_eq!(fast.prune_stats, slow.prune_stats, "trial {trial}");
                assert_eq!(fast.max_map_entries, slow.max_map_entries, "trial {trial}");
            }
        }
    }

    #[test]
    fn scales_to_hundreds_of_workers() {
        let mut rng = StdRng::seed_from_u64(3);
        let qualities: Vec<f64> = (0..300).map(|_| rng.gen_range(0.5..0.9)).collect();
        let jury = Jury::from_qualities(&qualities).unwrap();
        let est = BucketJqEstimator::new(BucketJqConfig::paper_experiments())
            .estimate(&jury, Prior::uniform());
        assert!(
            est.value > 0.999,
            "a 300-strong jury should be nearly perfect: {}",
            est.value
        );
        assert!(est.max_map_entries > 0);
    }
}
