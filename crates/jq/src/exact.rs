//! Exact Jury Quality by exhaustive enumeration (Definition 3).
//!
//! `JQ(J, S, α) = α Σ_V Pr(V | t=0) h(V) + (1−α) Σ_V Pr(V | t=1) (1 − h(V))`
//! where `h(V) = E[1_{S(V)=0}]`. The sum ranges over all `2^n` votings, so
//! these functions are exponential in the jury size; they are the ground
//! truth that the polynomial MV dynamic program and the bucket-based BV
//! approximation are validated against, and they also serve the small-jury
//! experiments (Figure 8 uses `n ≤ 11`).

use jury_model::{enumerate_binary_votings, Answer, Jury, Prior};
use jury_voting::{BayesianVoting, VotingStrategy};

use crate::error::{JqError, JqResult};

/// Largest jury size accepted by the exact enumerations (2^20 votings).
pub const MAX_EXACT_JURY: usize = 20;

/// Checks the enumeration size limit shared by the exact back-ends.
fn check_jury_size(jury: &Jury) -> JqResult<()> {
    if jury.size() <= MAX_EXACT_JURY {
        Ok(())
    } else {
        Err(JqError::JuryTooLarge {
            size: jury.size(),
            max: MAX_EXACT_JURY,
        })
    }
}

/// Exact JQ of an arbitrary voting strategy, by enumerating all `2^n`
/// votings (Definition 3).
///
/// # Errors
///
/// Returns [`JqError::JuryTooLarge`] if the jury has more than
/// [`MAX_EXACT_JURY`] members (use the approximation in [`crate::bucket`] or
/// [`crate::incremental`] for larger juries), and [`JqError::Model`] if the
/// strategy rejects the generated votings.
pub fn exact_jq(jury: &Jury, strategy: &dyn VotingStrategy, prior: Prior) -> JqResult<f64> {
    check_jury_size(jury)?;
    let alpha = prior.alpha();
    let mut jq = 0.0;
    for votes in enumerate_binary_votings(jury.size()) {
        let h = strategy.prob_no(jury, &votes, prior)?;
        let p_given_no = jury.voting_likelihood(&votes, Answer::No)?;
        let p_given_yes = jury.voting_likelihood(&votes, Answer::Yes)?;
        jq += alpha * p_given_no * h + (1.0 - alpha) * p_given_yes * (1.0 - h);
    }
    Ok(jq)
}

/// Exact JQ of Bayesian Voting, using the fact that BV picks the answer with
/// the larger unnormalized posterior, so its per-voting contribution is
/// simply `max(P_0(V), P_1(V))`:
///
/// `JQ(J, BV, α) = Σ_V max(α Pr(V|t=0), (1−α) Pr(V|t=1))`.
///
/// This is the same exponential enumeration as [`exact_jq`] but roughly twice
/// as fast because it skips the strategy dispatch; it also makes the
/// optimality of BV (Theorem 1) syntactically obvious: every other strategy's
/// contribution is a convex combination of `P_0(V)` and `P_1(V)`.
///
/// # Errors
///
/// Returns [`JqError::JuryTooLarge`] if the jury has more than
/// [`MAX_EXACT_JURY`] members.
pub fn exact_bv_jq(jury: &Jury, prior: Prior) -> JqResult<f64> {
    check_jury_size(jury)?;
    let alpha = prior.alpha();
    let mut jq = 0.0;
    for votes in enumerate_binary_votings(jury.size()) {
        let p0 = alpha * jury.voting_likelihood(&votes, Answer::No)?;
        let p1 = (1.0 - alpha) * jury.voting_likelihood(&votes, Answer::Yes)?;
        jq += p0.max(p1);
    }
    Ok(jq)
}

/// Exact JQ of Bayesian Voting computed the slow way — by delegating to
/// [`exact_jq`] with a [`BayesianVoting`] instance. Exposed so tests and
/// benchmarks can cross-validate the two formulations.
///
/// # Errors
///
/// Returns the same errors as [`exact_jq`].
pub fn exact_bv_jq_via_strategy(jury: &Jury, prior: Prior) -> JqResult<f64> {
    exact_jq(jury, &BayesianVoting::new(), prior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_voting::{
        all_strategies, MajorityVoting, RandomBallotVoting, RandomizedMajorityVoting,
    };

    fn example_jury() -> Jury {
        Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap()
    }

    #[test]
    fn figure_2_majority_voting_jq() {
        // Example 2: JQ(J, MV, 0.5) = 79.2 %.
        let jq = exact_jq(&example_jury(), &MajorityVoting::new(), Prior::uniform()).unwrap();
        assert!((jq - 0.792).abs() < 1e-12, "got {jq}");
    }

    #[test]
    fn figure_2_bayesian_voting_jq() {
        // Example 3: JQ(J, BV, 0.5) = 90 %.
        let jq = exact_bv_jq(&example_jury(), Prior::uniform()).unwrap();
        assert!((jq - 0.9).abs() < 1e-12, "got {jq}");
        let via = exact_bv_jq_via_strategy(&example_jury(), Prior::uniform()).unwrap();
        assert!((via - 0.9).abs() < 1e-12, "got {via}");
    }

    #[test]
    fn introduction_example_mv_jq() {
        // Section 1: the jury {B, E, F} with qualities 0.7, 0.6, 0.6 has
        // JQ(MV) = 69.6 %.
        let jury = Jury::from_qualities(&[0.7, 0.6, 0.6]).unwrap();
        let jq = exact_jq(&jury, &MajorityVoting::new(), Prior::uniform()).unwrap();
        assert!((jq - 0.696).abs() < 1e-12, "got {jq}");
    }

    #[test]
    fn random_ballot_voting_is_a_coin() {
        let jq = exact_jq(
            &example_jury(),
            &RandomBallotVoting::new(),
            Prior::uniform(),
        )
        .unwrap();
        assert!((jq - 0.5).abs() < 1e-12);
    }

    #[test]
    fn randomized_mv_is_dominated_by_mv_here() {
        let prior = Prior::uniform();
        let mv = exact_jq(&example_jury(), &MajorityVoting::new(), prior).unwrap();
        let rmv = exact_jq(&example_jury(), &RandomizedMajorityVoting::new(), prior).unwrap();
        assert!(
            rmv <= mv + 1e-12,
            "RMV {rmv} should not beat MV {mv} on average"
        );
    }

    #[test]
    fn bv_is_optimal_among_the_catalogue() {
        // Corollary 1 on a concrete jury: BV's JQ is the maximum over the
        // whole strategy catalogue, for several priors.
        let jury = Jury::from_qualities(&[0.85, 0.7, 0.65, 0.55, 0.9]).unwrap();
        for alpha in [0.2, 0.5, 0.8] {
            let prior = Prior::new(alpha).unwrap();
            let bv = exact_bv_jq(&jury, prior).unwrap();
            for entry in all_strategies() {
                let other = exact_jq(&jury, entry.strategy.as_ref(), prior).unwrap();
                assert!(
                    other <= bv + 1e-12,
                    "{} achieves {other} > BV's {bv} at alpha={alpha}",
                    entry.name()
                );
            }
        }
    }

    #[test]
    fn single_worker_bv_jq_is_max_of_quality_and_prior_certainty() {
        // For one worker and a uniform prior, JQ(BV) = max(q, 1 − q).
        for q in [0.3, 0.5, 0.8, 0.95] {
            let jury = Jury::from_qualities(&[q]).unwrap();
            let jq = exact_bv_jq(&jury, Prior::uniform()).unwrap();
            assert!((jq - q.max(1.0 - q)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_jury_jq_follows_the_prior() {
        // With no votes BV answers the prior's mode, so JQ = max(α, 1 − α).
        let jury = Jury::empty();
        for alpha in [0.0, 0.3, 0.5, 0.9] {
            let prior = Prior::new(alpha).unwrap();
            let jq = exact_bv_jq(&jury, prior).unwrap();
            assert!((jq - alpha.max(1.0 - alpha)).abs() < 1e-12);
        }
    }

    #[test]
    fn jq_is_within_unit_interval() {
        let jury = Jury::from_qualities(&[0.55, 0.95, 0.7, 0.6]).unwrap();
        for entry in all_strategies() {
            for alpha in [0.0, 0.25, 0.5, 1.0] {
                let jq =
                    exact_jq(&jury, entry.strategy.as_ref(), Prior::new(alpha).unwrap()).unwrap();
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&jq),
                    "{} gave {jq}",
                    entry.name()
                );
            }
        }
    }

    #[test]
    fn prior_shifts_bv_jq() {
        // A more confident prior can only help BV.
        let jury = Jury::from_qualities(&[0.6, 0.6]).unwrap();
        let uniform = exact_bv_jq(&jury, Prior::uniform()).unwrap();
        let confident = exact_bv_jq(&jury, Prior::new(0.9).unwrap()).unwrap();
        assert!(confident >= uniform - 1e-12);
    }

    #[test]
    fn oversized_jury_is_a_typed_error_not_a_panic() {
        let jury = Jury::from_qualities(&[0.6; 21]).unwrap();
        let err = exact_bv_jq(&jury, Prior::uniform()).unwrap_err();
        assert_eq!(
            err,
            JqError::JuryTooLarge {
                size: 21,
                max: MAX_EXACT_JURY
            }
        );
        let err = exact_jq(&jury, &MajorityVoting::new(), Prior::uniform()).unwrap_err();
        assert!(matches!(err, JqError::JuryTooLarge { .. }));
        // At the boundary the enumeration still runs.
        let boundary = Jury::from_qualities(&[0.6; MAX_EXACT_JURY]).unwrap();
        assert!(exact_bv_jq(&boundary, Prior::uniform()).is_ok());
    }
}
