//! Incorporating the task provider's prior into JQ computation (Theorem 3).
//!
//! `JQ(J, BV, α) = JQ(J ∪ {j_{n+1}}, BV, 0.5)` where the pseudo-worker
//! `j_{n+1}` has quality `α`: under Bayesian voting the prior behaves exactly
//! like one more (free) vote from a worker whose quality equals the prior.
//! This lets every α-aware computation reuse the `α = 0.5` machinery.

use jury_model::{Jury, Prior, Worker, WorkerId};

/// The reserved id of the pseudo-worker representing the prior. Real pools
/// assign ids sequentially from zero, so the maximum id never collides in
/// practice; the fold function also skips ids already present.
pub const PRIOR_PSEUDO_WORKER_ID: WorkerId = WorkerId(u32::MAX);

/// Applies Theorem 3: returns a jury equivalent to `(jury, prior)` under the
/// uniform prior, by appending a zero-cost pseudo-worker whose quality is
/// `α`. A uniform prior (`α = 0.5`) folds to the jury unchanged, since a
/// quality-0.5 worker carries no information.
pub fn fold_prior(jury: &Jury, prior: Prior) -> Jury {
    if prior.is_uniform() {
        return jury.clone();
    }
    let mut id = PRIOR_PSEUDO_WORKER_ID;
    // Extremely defensive: avoid colliding with an existing id.
    while jury.contains(id) {
        id = WorkerId(id.raw().wrapping_sub(1));
    }
    let pseudo = Worker::free(id, prior.alpha()).expect("a valid prior is a valid quality");
    jury.with_worker(pseudo)
}

/// Whether a worker is the pseudo-worker introduced by [`fold_prior`].
pub fn is_prior_pseudo_worker(worker: &Worker) -> bool {
    worker.id() == PRIOR_PSEUDO_WORKER_ID && worker.cost() == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_bv_jq;

    #[test]
    fn uniform_prior_folds_to_identity() {
        let jury = Jury::from_qualities(&[0.9, 0.6]).unwrap();
        let folded = fold_prior(&jury, Prior::uniform());
        assert_eq!(folded, jury);
    }

    #[test]
    fn non_uniform_prior_adds_one_pseudo_worker() {
        let jury = Jury::from_qualities(&[0.9, 0.6]).unwrap();
        let folded = fold_prior(&jury, Prior::new(0.8).unwrap());
        assert_eq!(folded.size(), 3);
        let pseudo = folded.workers().last().unwrap();
        assert!(is_prior_pseudo_worker(pseudo));
        assert!((pseudo.quality() - 0.8).abs() < 1e-12);
        assert_eq!(pseudo.cost(), 0.0);
        // The original members are untouched.
        assert_eq!(&folded.workers()[..2], jury.workers());
    }

    #[test]
    fn theorem_3_exact_equivalence() {
        // JQ(J, BV, α) computed directly equals JQ(J ∪ {qα}, BV, 0.5) for a
        // spread of juries and priors.
        let cases: Vec<Vec<f64>> = vec![
            vec![0.7],
            vec![0.9, 0.6, 0.6],
            vec![0.55, 0.8, 0.65, 0.75],
            vec![0.5, 0.5, 0.9],
        ];
        for qualities in cases {
            let jury = Jury::from_qualities(&qualities).unwrap();
            for alpha in [0.1, 0.3, 0.5, 0.7, 0.95] {
                let prior = Prior::new(alpha).unwrap();
                let direct = exact_bv_jq(&jury, prior).unwrap();
                let folded = fold_prior(&jury, prior);
                let via_fold = exact_bv_jq(&folded, Prior::uniform()).unwrap();
                assert!(
                    (direct - via_fold).abs() < 1e-10,
                    "alpha={alpha}, qualities={qualities:?}: {direct} vs {via_fold}"
                );
            }
        }
    }

    #[test]
    fn extreme_priors_fold_correctly() {
        let jury = Jury::from_qualities(&[0.6, 0.7]).unwrap();
        for alpha in [0.0, 1.0] {
            let prior = Prior::new(alpha).unwrap();
            let direct = exact_bv_jq(&jury, prior).unwrap();
            let via_fold = exact_bv_jq(&fold_prior(&jury, prior), Prior::uniform()).unwrap();
            assert!((direct - via_fold).abs() < 1e-12);
            // A certain prior makes the jury quality 1.
            assert!((direct - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pseudo_worker_id_collisions_are_avoided() {
        let mut jury = Jury::from_qualities(&[0.7]).unwrap();
        jury.push(Worker::free(PRIOR_PSEUDO_WORKER_ID, 0.6).unwrap());
        let folded = fold_prior(&jury, Prior::new(0.9).unwrap());
        assert_eq!(folded.size(), 3);
        // All ids distinct.
        let mut ids = folded.ids();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }
}
