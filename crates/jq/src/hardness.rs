//! The hardness gadget behind Theorem 2 (computing `JQ(J, BV, α)` is
//! NP-hard).
//!
//! The paper's proof reduces the **partition problem** — given positive
//! integers `a_1, ..., a_n`, can they be split into two subsets with equal
//! sums? — to JQ computation: each integer `a_i` is encoded as a worker whose
//! log-odds `φ(q_i)` is proportional to `a_i`, i.e. `q_i = e^{a_i·s} / (1 +
//! e^{a_i·s})` for a scale `s`. A voting `V` then has `R(V) = Σ ±a_i·s = 0`
//! exactly when the votes split the integers into two equal-sum halves, and
//! the `key = 0` probability mass that Algorithm 1 weighs by ½ is non-zero
//! iff the partition instance is a *yes* instance.
//!
//! This module implements that gadget. It is not needed by the system itself
//! (the whole point of Theorem 2 is that we *approximate* instead), but it
//! documents the reduction executably: tests decide small partition
//! instances by running the JQ machinery and compare against brute force.

use jury_model::{quality_from_log_odds, Jury, Worker, WorkerId};

/// The scale applied to the integers before they become log-odds. Kept small
/// so that the resulting qualities stay comfortably inside `(0.5, 1)`.
pub const DEFAULT_SCALE: f64 = 0.05;

/// Builds the jury encoding a partition instance: worker `i` has quality
/// `q_i` with `φ(q_i) = a_i · scale` and zero cost.
pub fn partition_gadget(integers: &[u32], scale: f64) -> Jury {
    let workers = integers
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let quality = quality_from_log_odds(a as f64 * scale);
            Worker::free(WorkerId(i as u32), quality).expect("logistic values are in (0, 1)")
        })
        .collect();
    Jury::new(workers)
}

/// The total probability mass of votings whose weighted sum `R(V)` is exactly
/// zero, computed by the same subset-sum dynamic program as Algorithm 1 but
/// over *exact integer* keys (no bucketing), so the answer is exact.
///
/// The mass is strictly positive iff the integers admit an equal-sum
/// partition.
pub fn zero_mass(integers: &[u32]) -> f64 {
    use std::collections::HashMap;
    // Work directly on the integers: R(V) = Σ_i (1 - 2 v_i) a_i. Probabilities
    // use the gadget qualities so the mass matches the JQ formulation.
    let jury = partition_gadget(integers, DEFAULT_SCALE);
    let mut current: HashMap<i64, f64> = HashMap::from([(0i64, 1.0f64)]);
    for (worker, &a) in jury.workers().iter().zip(integers.iter()) {
        let q = worker.quality();
        let mut next: HashMap<i64, f64> = HashMap::with_capacity(current.len() * 2);
        for (&key, &prob) in &current {
            *next.entry(key + a as i64).or_insert(0.0) += prob * q;
            *next.entry(key - a as i64).or_insert(0.0) += prob * (1.0 - q);
        }
        current = next;
    }
    current.get(&0).copied().unwrap_or(0.0)
}

/// Decides the partition problem through the JQ machinery: *yes* iff some
/// voting splits the integers into two equal-sum halves, i.e. iff the zero
/// key carries probability mass.
pub fn has_equal_partition(integers: &[u32]) -> bool {
    if integers.is_empty() {
        return true;
    }
    let total: u64 = integers.iter().map(|&a| a as u64).sum();
    if !total.is_multiple_of(2) {
        return false;
    }
    zero_mass(integers) > 0.0
}

/// Brute-force reference for tests: tries every subset.
pub fn has_equal_partition_bruteforce(integers: &[u32]) -> bool {
    let n = integers.len();
    assert!(n <= 24, "brute force limited to 24 integers");
    let total: u64 = integers.iter().map(|&a| a as u64).sum();
    if !total.is_multiple_of(2) {
        return false;
    }
    let target = total / 2;
    (0u32..(1u32 << n)).any(|mask| {
        let sum: u64 = integers
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> i) & 1 == 1)
            .map(|(_, &a)| a as u64)
            .sum();
        sum == target
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::log_odds;

    #[test]
    fn gadget_workers_encode_the_integers() {
        let integers = [3u32, 5, 8];
        let jury = partition_gadget(&integers, DEFAULT_SCALE);
        assert_eq!(jury.size(), 3);
        for (worker, &a) in jury.workers().iter().zip(integers.iter()) {
            let phi = log_odds(worker.quality());
            assert!((phi - a as f64 * DEFAULT_SCALE).abs() < 1e-9);
            assert!(worker.quality() > 0.5 && worker.quality() < 1.0);
        }
    }

    #[test]
    fn decides_classic_yes_and_no_instances() {
        assert!(has_equal_partition(&[1, 5, 11, 5])); // {11} never balances... {1,5,5} = 11 ✓
        assert!(has_equal_partition(&[3, 1, 1, 2, 2, 1])); // total 10, {3,2} = {1,1,2,1} ✓
        assert!(!has_equal_partition(&[2, 2, 3])); // odd total
        assert!(!has_equal_partition(&[1, 2, 4, 8])); // total 15, odd
        assert!(!has_equal_partition(&[1, 1, 16])); // even total but no split
        assert!(has_equal_partition(&[]));
        assert!(!has_equal_partition(&[7]));
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        // Small deterministic pseudo-random instances.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 9 + 1) as u32
        };
        for n in 2..10usize {
            for _ in 0..20 {
                let integers: Vec<u32> = (0..n).map(|_| next()).collect();
                assert_eq!(
                    has_equal_partition(&integers),
                    has_equal_partition_bruteforce(&integers),
                    "disagreement on {integers:?}"
                );
            }
        }
    }

    #[test]
    fn zero_mass_is_a_probability() {
        let mass = zero_mass(&[2, 2, 4]);
        assert!(mass > 0.0 && mass < 1.0);
        assert_eq!(zero_mass(&[1, 1, 16]), 0.0);
    }
}
