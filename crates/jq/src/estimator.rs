//! A small facade unifying the JQ computation back-ends.
//!
//! Callers that just want "the jury quality of this jury under the optimal
//! strategy" can use [`JqEngine`]: it picks the exact enumeration for tiny
//! juries (where it is both fastest and exact) and the bucket approximation
//! otherwise, and it also exposes the MV dynamic program needed by the
//! baseline system.

use jury_model::{Jury, Prior};
use jury_voting::VotingStrategy;

use crate::bucket::{BucketJqConfig, BucketJqEstimator};
use crate::error::JqResult;
use crate::exact::{exact_bv_jq, exact_jq, MAX_EXACT_JURY};
use crate::mv::mv_jq;

/// Which back-end computed a JQ value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JqBackend {
    /// Exhaustive enumeration over all votings (exact, exponential).
    ExactEnumeration,
    /// The Poisson-binomial dynamic program for MV (exact, polynomial).
    MvDynamicProgram,
    /// The bucket-based approximation of Algorithm 1.
    BucketApproximation,
}

/// A JQ value annotated with the back-end that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JqValue {
    /// The jury quality in `[0, 1]`.
    pub value: f64,
    /// The back-end used.
    pub backend: JqBackend,
}

/// Unified JQ computation engine.
///
/// The engine is plain configuration data (`Copy`), so callers that need one
/// engine per thread — like `jury-service`'s batch executor — can duplicate
/// handles for free instead of sharing one behind a lock.
#[derive(Debug, Clone, Copy)]
pub struct JqEngine {
    bucket: BucketJqEstimator,
    /// Juries of at most this size use exact enumeration for BV.
    exact_cutoff: usize,
}

impl Default for JqEngine {
    fn default() -> Self {
        JqEngine {
            bucket: BucketJqEstimator::default(),
            exact_cutoff: 12,
        }
    }
}

impl JqEngine {
    /// Creates an engine with a specific bucket configuration.
    pub fn new(config: BucketJqConfig) -> Self {
        JqEngine {
            bucket: BucketJqEstimator::new(config),
            exact_cutoff: 12,
        }
    }

    /// Creates an engine that always uses the bucket approximation for BV
    /// (useful for benchmarking the approximation itself).
    pub fn approximate_only(config: BucketJqConfig) -> Self {
        JqEngine {
            bucket: BucketJqEstimator::new(config),
            exact_cutoff: 0,
        }
    }

    /// Sets the exact-enumeration cutoff (capped at [`MAX_EXACT_JURY`]).
    pub fn with_exact_cutoff(mut self, cutoff: usize) -> Self {
        self.exact_cutoff = cutoff.min(MAX_EXACT_JURY);
        self
    }

    /// The jury quality under Bayesian voting, `JQ(J, BV, α)`.
    pub fn bv_jq(&self, jury: &Jury, prior: Prior) -> JqValue {
        if jury.size() <= self.exact_cutoff {
            JqValue {
                // The cutoff is capped at MAX_EXACT_JURY, so the size
                // precondition of the enumeration always holds here.
                value: exact_bv_jq(jury, prior).expect("cutoff is capped at MAX_EXACT_JURY"),
                backend: JqBackend::ExactEnumeration,
            }
        } else {
            JqValue {
                value: self.bucket.jq(jury, prior),
                backend: JqBackend::BucketApproximation,
            }
        }
    }

    /// The jury quality under majority voting, `JQ(J, MV, α)` (exact).
    pub fn mv_jq(&self, jury: &Jury, prior: Prior) -> JqValue {
        JqValue {
            value: mv_jq(jury, prior).expect("MV JQ cannot fail"),
            backend: JqBackend::MvDynamicProgram,
        }
    }

    /// The jury quality of an arbitrary strategy by exact enumeration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::JqError::JuryTooLarge`] for juries above
    /// [`MAX_EXACT_JURY`] members.
    pub fn strategy_jq(
        &self,
        jury: &Jury,
        strategy: &dyn VotingStrategy,
        prior: Prior,
    ) -> JqResult<JqValue> {
        Ok(JqValue {
            value: exact_jq(jury, strategy, prior)?,
            backend: JqBackend::ExactEnumeration,
        })
    }

    /// The underlying bucket estimator (for callers needing diagnostics).
    pub fn bucket_estimator(&self) -> &BucketJqEstimator {
        &self.bucket
    }

    /// The exact-enumeration cutoff in effect.
    pub fn exact_cutoff(&self) -> usize {
        self.exact_cutoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_voting::MajorityVoting;

    #[test]
    fn small_juries_use_exact_enumeration() {
        let engine = JqEngine::default();
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let jq = engine.bv_jq(&jury, Prior::uniform());
        assert_eq!(jq.backend, JqBackend::ExactEnumeration);
        assert!((jq.value - 0.9).abs() < 1e-12);
    }

    #[test]
    fn large_juries_use_the_approximation() {
        let engine = JqEngine::default();
        let jury = Jury::from_qualities(&[0.7; 30]).unwrap();
        let jq = engine.bv_jq(&jury, Prior::uniform());
        assert_eq!(jq.backend, JqBackend::BucketApproximation);
        assert!(jq.value > 0.95);
    }

    #[test]
    fn approximate_only_engine_never_enumerates() {
        let engine = JqEngine::approximate_only(BucketJqConfig::default());
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let jq = engine.bv_jq(&jury, Prior::uniform());
        assert_eq!(jq.backend, JqBackend::BucketApproximation);
        assert!((jq.value - 0.9).abs() < 0.01);
    }

    #[test]
    fn mv_backend_is_the_dynamic_program() {
        let engine = JqEngine::default();
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let jq = engine.mv_jq(&jury, Prior::uniform());
        assert_eq!(jq.backend, JqBackend::MvDynamicProgram);
        assert!((jq.value - 0.792).abs() < 1e-12);
    }

    #[test]
    fn strategy_jq_delegates_to_enumeration() {
        let engine = JqEngine::default();
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let jq = engine
            .strategy_jq(&jury, &MajorityVoting::new(), Prior::uniform())
            .unwrap();
        assert!((jq.value - 0.792).abs() < 1e-12);
        assert_eq!(jq.backend, JqBackend::ExactEnumeration);
    }

    #[test]
    fn cutoff_is_capped() {
        let engine = JqEngine::default().with_exact_cutoff(100);
        let jury = Jury::from_qualities(&[0.6; 15]).unwrap();
        // 15 ≤ 20 so enumeration is still allowed; but the point is no panic.
        let jq = engine.bv_jq(&jury, Prior::uniform());
        assert!(jq.value > 0.5);
    }
}
