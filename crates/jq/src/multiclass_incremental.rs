//! Incremental multi-class Jury Quality — Section 7's tuple-key DP as a
//! stateful push/pop/swap engine.
//!
//! [`crate::multiclass::approx_multiclass_bv_jq`] rebuilds, for every
//! candidate jury, one bucketed dynamic program per candidate answer `t'`:
//! the key is the vector (over the other labels) of quantized log posterior
//! ratios, and folding a worker in convolves her `ℓ` per-vote spikes into
//! the key distribution. Confusion-matrix selection evaluates *neighbouring*
//! juries thousands of times — exactly the hot path `IncrementalJq` removed
//! for the binary case — so [`IncrementalMultiClassJq`] keeps all `ℓ` key
//! distributions alive between evaluations as **dense row-major boxes** over
//! the per-target bucket grids:
//!
//! * [`IncrementalMultiClassJq::push_worker`] convolves one worker's spikes
//!   into every target's box — `O(cells · ℓ)`;
//! * [`IncrementalMultiClassJq::pop_worker`] removes one by **exact
//!   deconvolution**, solving the convolution backwards from a lexicographic
//!   corner spike (the multi-dimensional analogue of the binary engine's
//!   top-down recurrence, taking whichever of the lex-min/lex-max corners
//!   has the larger probability). The same negative-mass/total-mass
//!   stability guard as the binary engine protects it, falling back to a
//!   from-scratch rebuild when floating-point drift accumulates;
//! * [`IncrementalMultiClassJq::swap_worker`] composes the two, so an
//!   annealing neighbour costs two box sweeps instead of a full `O(n)`
//!   rebuild of every DP.
//!
//! Grids are fixed per engine: [`IncrementalMultiClassJq::new`] takes the
//! explicit per-target widths (the property tests pin it to the scratch DP
//! via [`crate::multiclass::multiclass_grid_deltas`]), and
//! [`IncrementalMultiClassJq::for_pool`] derives widths that let every jury
//! of a candidate pool share one grid, capping the resolution so the dense
//! boxes never outgrow [`MultiClassIncrementalConfig::max_cells`].
//!
//! ```
//! use jury_jq::{exact_multiclass_bv_jq, IncrementalMultiClassJq, MultiClassIncrementalConfig};
//! use jury_model::{CategoricalPrior, MatrixJury};
//!
//! let pool = MatrixJury::from_qualities(&[0.9, 0.7, 0.6, 0.8], 3).unwrap();
//! let prior = CategoricalPrior::uniform(3).unwrap();
//! let mut engine = IncrementalMultiClassJq::for_pool(
//!     pool.workers(),
//!     &prior,
//!     MultiClassIncrementalConfig::default(),
//! )
//! .unwrap();
//!
//! // Build the three-strong jury one push at a time.
//! for worker in &pool.workers()[..3] {
//!     engine.push_worker(worker).unwrap();
//! }
//! let jury = MatrixJury::new(pool.workers()[..3].to_vec()).unwrap();
//! let exact = exact_multiclass_bv_jq(&jury, &prior).unwrap();
//! assert!((engine.jq() - exact).abs() < 5e-3);
//!
//! // A neighbour jury costs one swap; undoing it restores the value.
//! let before = engine.jq();
//! engine.swap_worker(&pool.workers()[2], &pool.workers()[3]).unwrap();
//! engine.swap_worker(&pool.workers()[3], &pool.workers()[2]).unwrap();
//! assert!((engine.jq() - before).abs() < 1e-9);
//! ```

use jury_model::{CategoricalPrior, Label, MatrixWorker, ModelError, WorkerId};

use crate::error::{JqError, JqResult};
use crate::incremental::IncrementalStats;
use crate::kernel::{fmadd, KernelMode};
use crate::multiclass::{clamped_log_ratio, target_max_abs_ratio};

/// Configuration of the incremental multi-class engine's bucket grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiClassIncrementalConfig {
    /// Desired per-worker bucket resolution of each log-ratio dimension
    /// (the analogue of
    /// [`crate::multiclass::MultiClassBucketConfig::num_buckets`]).
    pub num_buckets: usize,
    /// Upper bound on the dense box volume (cells) any single target's key
    /// distribution may reach for a full-pool jury. [`for_pool`] coarsens
    /// the grid until the worst case fits; construction fails when even one
    /// bucket per worker would overflow.
    ///
    /// [`for_pool`]: IncrementalMultiClassJq::for_pool
    pub max_cells: usize,
    /// Deconvolution stability tolerance: negative mass below `-tolerance`
    /// or total-mass drift above `tolerance` triggers a from-scratch
    /// rebuild. `0.0` forces a rebuild on effectively every pop (useful for
    /// exercising the fallback).
    pub stability_tolerance: f64,
    /// Which implementation of the box sweeps the engine runs: the
    /// vectorized row-sliced passes or the scalar odometer loops (see
    /// [`KernelMode`]).
    pub kernel: KernelMode,
}

impl Default for MultiClassIncrementalConfig {
    fn default() -> Self {
        MultiClassIncrementalConfig {
            num_buckets: 400,
            max_cells: 1 << 22,
            stability_tolerance: 1e-10,
            kernel: KernelMode::default(),
        }
    }
}

impl MultiClassIncrementalConfig {
    /// Sets the desired per-worker bucket resolution.
    pub fn with_num_buckets(mut self, num_buckets: usize) -> Self {
        self.num_buckets = num_buckets.max(1);
        self
    }

    /// Sets the dense-box cell budget.
    pub fn with_max_cells(mut self, max_cells: usize) -> Self {
        self.max_cells = max_cells.max(1);
        self
    }

    /// Sets the stability tolerance of the deconvolution guard.
    pub fn with_stability_tolerance(mut self, tolerance: f64) -> Self {
        self.stability_tolerance = tolerance.max(0.0);
        self
    }

    /// Selects the kernel implementation (vectorized vs scalar reference).
    pub fn with_kernel_mode(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// The largest per-worker bucket count a pool of `pool_size` workers
    /// over `num_choices` labels can afford under [`Self::max_cells`]:
    /// after `n` pushes each of the `ℓ − 1` dimensions spans at most
    /// `2·n·b + 1` buckets, so `b` is chosen with
    /// `(2·n·b + 1)^(ℓ−1) ≤ max_cells`.
    pub fn resolve_buckets(&self, pool_size: usize, num_choices: usize) -> Option<usize> {
        let dims = num_choices.saturating_sub(1).max(1);
        let n = pool_size.max(1) as f64;
        let side = (self.max_cells.max(1) as f64).powf(1.0 / dims as f64);
        let cap = ((side - 1.0) / (2.0 * n)).floor();
        if cap < 1.0 {
            None
        } else {
            Some((cap as usize).min(self.num_buckets.max(1)))
        }
    }

    /// The cells the **coarsest possible grid** (one bucket per worker)
    /// needs for a pool of `pool_size` workers over `num_choices` labels:
    /// `(2·n + 1)^(ℓ−1)`, saturating. This is the grid-geometry floor behind
    /// [`Self::resolve_buckets`] returning `None` — callers use it to report
    /// *how far* an infeasible pool overshoots [`Self::max_cells`] without
    /// re-deriving the box shape.
    pub fn min_cells(pool_size: usize, num_choices: usize) -> u64 {
        let side = 2 * pool_size.max(1) as u64 + 1;
        let dims = num_choices.saturating_sub(1).max(1);
        side.saturating_pow(dims.min(u32::MAX as usize) as u32)
    }
}

/// One member's contribution to one target's DP: the worker's per-vote
/// spikes grouped by (quantized) shift vector, plus the per-dimension hull
/// used to grow and shrink the dense box.
#[derive(Debug, Clone)]
struct MemberSpikes {
    /// `(shift vector, Pr(vote | target))`, one entry per distinct shift.
    spikes: Vec<(Vec<i64>, f64)>,
    /// Per-dimension minimum shift over the spikes.
    min_shift: Vec<i64>,
    /// Per-dimension maximum shift over the spikes.
    max_shift: Vec<i64>,
    /// Total spike probability (the worker's row sum for this target);
    /// deconvolution checks mass conservation against it.
    mass: f64,
}

impl MemberSpikes {
    /// Whether folding this member in is the identity convolution (every
    /// spike lands on the zero shift).
    fn is_identity(&self) -> bool {
        self.spikes.len() == 1 && self.spikes[0].0.iter().all(|&s| s == 0)
    }
}

/// One jury member as tracked by the engine.
#[derive(Debug, Clone)]
struct Member {
    id: WorkerId,
    per_target: Vec<MemberSpikes>,
}

/// The dense key distribution of one candidate answer `t'`.
#[derive(Debug, Clone)]
struct TargetDp {
    /// Grid width `δ_{t'}` of every dimension of this target's key.
    delta: f64,
    /// The other labels, in increasing order (the key's dimensions).
    others: Vec<usize>,
    /// The quantized prior key `(ln α_{t'} − ln α_i)_i` — the state of the
    /// empty jury.
    initial: Vec<i64>,
    /// Per-dimension inclusive lower bound of the dense box.
    lo: Vec<i64>,
    /// Per-dimension inclusive upper bound of the dense box.
    hi: Vec<i64>,
    /// Row-major mass over the box.
    dist: Vec<f64>,
    /// Double-buffer for convolution/deconvolution targets.
    scratch: Vec<f64>,
}

impl TargetDp {
    fn extents(&self) -> Vec<usize> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&lo, &hi)| (hi - lo + 1) as usize)
            .collect()
    }

    fn reset(&mut self) {
        self.lo.clone_from(&self.initial);
        self.hi.clone_from(&self.initial);
        self.dist.clear();
        self.dist.push(1.0);
    }
}

/// Row-major strides for a box with the given per-dimension extents.
fn strides(extents: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; extents.len()];
    for d in (0..extents.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * extents[d + 1];
    }
    strides
}

/// Stateful, incrementally-updatable estimator of the multi-class
/// `JQ(J, BV, ~α)` on fixed per-target bucket grids — see the
/// [module docs](crate::multiclass_incremental) for the contract and an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct IncrementalMultiClassJq {
    num_choices: usize,
    alphas: Vec<f64>,
    max_cells: usize,
    tolerance: f64,
    kernel: KernelMode,
    targets: Vec<TargetDp>,
    members: Vec<Member>,
    stats: IncrementalStats,
}

impl IncrementalMultiClassJq {
    /// Creates an empty engine over the prior with one explicit grid width
    /// per target label (`0.0` collapses that target's dimensions to bucket
    /// zero). Matching the widths of
    /// [`crate::multiclass::multiclass_grid_deltas`] makes the engine
    /// reproduce the scratch tuple DP bucket for bucket.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::Model`] when `deltas` does not provide one finite,
    /// non-negative width per label of the prior.
    pub fn new(prior: &CategoricalPrior, deltas: &[f64]) -> JqResult<Self> {
        let l = prior.num_choices();
        if deltas.len() != l || deltas.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(JqError::Model(ModelError::InvalidPriorVector {
                reason: format!(
                    "need {} finite non-negative grid widths, got {:?}",
                    l, deltas
                ),
            }));
        }
        let targets = (0..l)
            .map(|t| {
                let delta = deltas[t];
                let others: Vec<usize> = (0..l).filter(|&i| i != t).collect();
                let initial: Vec<i64> = others
                    .iter()
                    .map(|&i| {
                        quantize(
                            clamped_log_ratio(prior.prob(Label(t)), prior.prob(Label(i))),
                            delta,
                        )
                    })
                    .collect();
                let mut dp = TargetDp {
                    delta,
                    others,
                    initial,
                    lo: Vec::new(),
                    hi: Vec::new(),
                    dist: Vec::new(),
                    scratch: Vec::new(),
                };
                dp.reset();
                dp
            })
            .collect();
        Ok(IncrementalMultiClassJq {
            num_choices: l,
            alphas: (0..l).map(|t| prior.prob(Label(t))).collect(),
            max_cells: MultiClassIncrementalConfig::default().max_cells,
            tolerance: MultiClassIncrementalConfig::default().stability_tolerance,
            kernel: MultiClassIncrementalConfig::default().kernel,
            targets,
            members: Vec::new(),
            stats: IncrementalStats::default(),
        })
    }

    /// Creates an engine whose grids are sized for juries drawn from the
    /// given candidate pool: per target, the width is the pool's largest
    /// absolute log-ratio divided by the resolved bucket count, so every
    /// feasible jury of the pool quantizes onto the same grids.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::StateTooLarge`] when even one bucket per worker
    /// would overflow [`MultiClassIncrementalConfig::max_cells`], and
    /// [`JqError::Model`] when the workers disagree with the prior's label
    /// count.
    pub fn for_pool(
        workers: &[MatrixWorker],
        prior: &CategoricalPrior,
        config: MultiClassIncrementalConfig,
    ) -> JqResult<Self> {
        let l = prior.num_choices();
        for worker in workers {
            check_worker_dimensions(worker, l)?;
        }
        let buckets = config.resolve_buckets(workers.len(), l).ok_or_else(|| {
            let dims = l.saturating_sub(1).max(1) as u32;
            JqError::StateTooLarge {
                cells: (2 * workers.len().max(1) as u64 + 1).saturating_pow(dims),
                max: config.max_cells as u64,
            }
        })?;
        let deltas: Vec<f64> = (0..l)
            .map(|t| {
                let max_abs = target_max_abs_ratio(workers, prior, Label(t));
                if max_abs > 0.0 {
                    max_abs / buckets as f64
                } else {
                    0.0
                }
            })
            .collect();
        let mut engine = IncrementalMultiClassJq::new(prior, &deltas)?;
        engine.max_cells = config.max_cells;
        engine.tolerance = config.stability_tolerance;
        engine.kernel = config.kernel;
        Ok(engine)
    }

    /// Overrides the deconvolution stability tolerance.
    pub fn with_stability_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance.max(0.0);
        self
    }

    /// Selects the kernel implementation (vectorized vs scalar reference).
    pub fn with_kernel_mode(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Number of labels `ℓ`.
    pub fn num_choices(&self) -> usize {
        self.num_choices
    }

    /// The per-target grid widths in effect.
    pub fn deltas(&self) -> Vec<f64> {
        self.targets.iter().map(|t| t.delta).collect()
    }

    /// Number of workers currently folded into the state.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no worker has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Work counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Convolves one worker's per-vote spike distributions into every
    /// target's dense box.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::Model`] when the worker's label count does not
    /// match the engine's, and [`JqError::StateTooLarge`] when the push
    /// would grow any box beyond the cell budget; the state is untouched in
    /// both cases.
    pub fn push_worker(&mut self, worker: &MatrixWorker) -> JqResult<()> {
        check_worker_dimensions(worker, self.num_choices)?;
        let member = self.spikes_for(worker);
        // Check every target's projected volume before mutating any.
        for (dp, spikes) in self.targets.iter().zip(&member.per_target) {
            let cells: u128 = dp
                .lo
                .iter()
                .zip(&dp.hi)
                .zip(spikes.min_shift.iter().zip(&spikes.max_shift))
                .map(|((&lo, &hi), (&smin, &smax))| ((hi + smax) - (lo + smin) + 1) as u128)
                .product();
            if cells > self.max_cells as u128 {
                return Err(JqError::StateTooLarge {
                    cells: cells.min(u64::MAX as u128) as u64,
                    max: self.max_cells as u64,
                });
            }
        }
        for (dp, spikes) in self.targets.iter_mut().zip(&member.per_target) {
            convolve_in(dp, spikes, self.kernel);
        }
        self.members.push(member);
        self.stats.pushes += 1;
        Ok(())
    }

    /// Removes a worker by exact deconvolution of every target's box, with
    /// a from-scratch rebuild fallback when the stability guard fires.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAJuryMember`] when no tracked member has the
    /// worker's id; the state is left untouched in that case.
    pub fn pop_worker(&mut self, worker: &MatrixWorker) -> JqResult<()> {
        self.pop_id(worker.id())
    }

    /// [`Self::pop_worker`] by worker id.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAJuryMember`] when the id was never pushed.
    pub fn pop_id(&mut self, id: WorkerId) -> JqResult<()> {
        let position = self
            .members
            .iter()
            .rposition(|m| m.id == id)
            .ok_or(JqError::NotAJuryMember { id })?;
        let member = self.members.swap_remove(position);
        self.stats.pops += 1;
        let tolerance = self.tolerance;
        let kernel = self.kernel;
        let mut stable = true;
        for (dp, spikes) in self.targets.iter_mut().zip(&member.per_target) {
            if spikes.is_identity() {
                continue;
            }
            if !deconvolve_out(dp, spikes, tolerance, kernel) {
                stable = false;
                break;
            }
        }
        if !stable {
            self.rebuild();
        }
        Ok(())
    }

    /// Replaces one member with another: a pop followed by a push, the
    /// annealing-neighbour operation.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAJuryMember`] when `out` is not part of the
    /// current jury, and propagates [`Self::push_worker`] errors for
    /// `incoming` (restoring the popped member first, so the state is
    /// unchanged on failure).
    pub fn swap_worker(&mut self, out: &MatrixWorker, incoming: &MatrixWorker) -> JqResult<()> {
        self.pop_worker(out)?;
        if let Err(err) = self.push_worker(incoming) {
            // Restore the popped member exactly (rebuild sheds the drift a
            // deconvolve/convolve round-trip would leave behind).
            self.members.push(self.spikes_for(out));
            self.rebuild();
            return Err(err);
        }
        self.stats.swaps += 1;
        Ok(())
    }

    /// The current `JQ(J, BV, ~α) = Σ_{t'} α_{t'} H(t')` estimate: per
    /// target, the mass of keys whose components all favour the target
    /// (strictly against smaller labels, matching the deterministic
    /// tie-break of the scratch DP). `O(cells)`.
    pub fn jq(&self) -> f64 {
        let mut jq = 0.0;
        for (t, dp) in self.targets.iter().enumerate() {
            jq += self.alphas[t] * h_mass(dp, t, self.kernel);
        }
        jq.clamp(0.0, 1.0)
    }

    /// Recomputes the JQ of the current member multiset from scratch on the
    /// same grids, without touching the incremental state — the value the
    /// incremental path must agree with.
    pub fn from_scratch_jq(&self) -> f64 {
        let mut fresh = self.clone();
        fresh.rebuild();
        fresh.jq()
    }

    /// Rebuilds every target's box from the tracked member list — the
    /// fallback the deconvolution guard escalates to.
    pub fn rebuild(&mut self) {
        for dp in &mut self.targets {
            dp.reset();
        }
        let members = std::mem::take(&mut self.members);
        for member in &members {
            for (dp, spikes) in self.targets.iter_mut().zip(&member.per_target) {
                convolve_in(dp, spikes, self.kernel);
            }
        }
        self.members = members;
        self.stats.rebuilds += 1;
    }

    /// Computes a worker's grouped, quantized spike distributions for every
    /// target grid.
    fn spikes_for(&self, worker: &MatrixWorker) -> Member {
        let l = self.num_choices;
        let per_target = self
            .targets
            .iter()
            .map(|dp| {
                let dims = dp.others.len();
                let target = Label(
                    (0..l)
                        .find(|t| !dp.others.contains(t))
                        .expect("one label is the target"),
                );
                let mut spikes: Vec<(Vec<i64>, f64)> = Vec::with_capacity(l);
                for k in 0..l {
                    let p = worker.prob(target, Label(k));
                    if p <= 0.0 {
                        continue;
                    }
                    let shift: Vec<i64> = dp
                        .others
                        .iter()
                        .map(|&i| {
                            quantize(
                                clamped_log_ratio(p, worker.prob(Label(i), Label(k))),
                                dp.delta,
                            )
                        })
                        .collect();
                    match spikes.iter_mut().find(|(s, _)| *s == shift) {
                        Some((_, mass)) => *mass += p,
                        None => spikes.push((shift, p)),
                    }
                }
                let mut min_shift = vec![i64::MAX; dims];
                let mut max_shift = vec![i64::MIN; dims];
                for (shift, _) in &spikes {
                    for d in 0..dims {
                        min_shift[d] = min_shift[d].min(shift[d]);
                        max_shift[d] = max_shift[d].max(shift[d]);
                    }
                }
                let mass = spikes.iter().map(|(_, p)| *p).sum();
                MemberSpikes {
                    spikes,
                    min_shift,
                    max_shift,
                    mass,
                }
            })
            .collect();
        Member {
            id: worker.id(),
            per_target,
        }
    }
}

fn check_worker_dimensions(worker: &MatrixWorker, num_choices: usize) -> JqResult<()> {
    if worker.confusion().num_choices() != num_choices {
        return Err(JqError::Model(ModelError::InvalidConfusionMatrix {
            reason: format!(
                "worker {} votes over {} labels but the engine tracks {}",
                worker.id(),
                worker.confusion().num_choices(),
                num_choices
            ),
        }));
    }
    Ok(())
}

/// Quantizes a log-ratio onto a grid of width `delta` (`0.0` collapses
/// everything to bucket zero), exactly like the scratch tuple DP.
#[inline]
fn quantize(r: f64, delta: f64) -> i64 {
    if delta > 0.0 {
        (r / delta).round() as i64
    } else {
        0
    }
}

/// `new[key] = Σ_s p_s · old[key − s]` on the dense box, growing the bounds
/// by the member's shift hull.
///
/// The vectorized mode exploits that the last dimension has stride one in
/// both boxes: each source row is a contiguous slice, and every spike maps
/// it onto one contiguous destination slice, so the scatter becomes a
/// handful of `mul_add` slice passes per row. The scalar mode is the
/// original per-cell odometer scatter, kept as the reference.
fn convolve_in(dp: &mut TargetDp, spikes: &MemberSpikes, kernel: KernelMode) {
    if spikes.is_identity() {
        return;
    }
    let dims = dp.lo.len();
    let old_ext = dp.extents();
    let new_lo: Vec<i64> = dp
        .lo
        .iter()
        .zip(&spikes.min_shift)
        .map(|(&lo, &s)| lo + s)
        .collect();
    let new_hi: Vec<i64> = dp
        .hi
        .iter()
        .zip(&spikes.max_shift)
        .map(|(&hi, &s)| hi + s)
        .collect();
    let new_ext: Vec<usize> = new_lo
        .iter()
        .zip(&new_hi)
        .map(|(&lo, &hi)| (hi - lo + 1) as usize)
        .collect();
    let new_strides = strides(&new_ext);
    let new_size: usize = new_ext.iter().product();
    dp.scratch.clear();
    dp.scratch.resize(new_size, 0.0);

    // Per spike, the flat offset of `old key 0 + shift` in the new box; the
    // remaining term Σ idx_d · new_stride_d is carried by the odometer.
    let offsets: Vec<(usize, f64)> = spikes
        .spikes
        .iter()
        .map(|(shift, p)| {
            let off: usize = (0..dims)
                .map(|d| ((dp.lo[d] + shift[d] - new_lo[d]) as usize) * new_strides[d])
                .sum();
            (off, *p)
        })
        .collect();

    let old_size = dp.dist.len();
    match kernel {
        KernelMode::Vectorized => {
            let last = dims - 1;
            let row_len = old_ext[last];
            let rows = old_size / row_len;
            for r in 0..rows {
                // Flat base of this row in the new box (last-dim stride is 1
                // in both boxes, so columns line up contiguously).
                let mut rem = r;
                let mut row_base = 0usize;
                for d in (0..last).rev() {
                    row_base += (rem % old_ext[d]) * new_strides[d];
                    rem /= old_ext[d];
                }
                let src = &dp.dist[r * row_len..(r + 1) * row_len];
                for &(off, p) in &offsets {
                    let dst = &mut dp.scratch[row_base + off..row_base + off + row_len];
                    for (o, &s) in dst.iter_mut().zip(src) {
                        *o = fmadd(s, p, *o);
                    }
                }
            }
        }
        KernelMode::ScalarReference => {
            let mut idx = vec![0usize; dims];
            let mut mapped = 0usize;
            for j in 0..old_size {
                let mass = dp.dist[j];
                if mass != 0.0 {
                    for &(off, p) in &offsets {
                        dp.scratch[mapped + off] += mass * p;
                    }
                }
                if j + 1 == old_size {
                    break;
                }
                let mut d = dims;
                while d > 0 {
                    d -= 1;
                    idx[d] += 1;
                    mapped += new_strides[d];
                    if idx[d] < old_ext[d] {
                        break;
                    }
                    mapped -= old_ext[d] * new_strides[d];
                    idx[d] = 0;
                }
            }
        }
    }
    std::mem::swap(&mut dp.dist, &mut dp.scratch);
    dp.lo = new_lo;
    dp.hi = new_hi;
}

/// Inverts [`convolve_in`]: solves `old` from `new[key] = Σ_s p_s ·
/// old[key − s]`, sweeping from whichever lexicographic corner spike has
/// the larger probability (corrections then only reference already-solved
/// cells). Returns `false` when the stability guard rejects the result,
/// leaving the state unchanged.
///
/// The vectorized mode walks whole rows (the stride-one last dimension) in
/// corner order. Corrections whose shift touches an earlier dimension
/// reference rows that are already fully solved, so they apply as `mul_add`
/// slice passes; pure last-dimension corrections have a causal carry, which
/// the kernel breaks into windows no wider than the smallest such shift —
/// inside a window every correction reads only finalized cells. The scalar
/// mode is the original per-cell odometer sweep, kept as the reference.
fn deconvolve_out(
    dp: &mut TargetDp,
    spikes: &MemberSpikes,
    tolerance: f64,
    kernel: KernelMode,
) -> bool {
    let dims = dp.lo.len();
    let new_ext = dp.extents();
    let new_strides = strides(&new_ext);
    let old_lo: Vec<i64> = dp
        .lo
        .iter()
        .zip(&spikes.min_shift)
        .map(|(&lo, &s)| lo - s)
        .collect();
    let old_hi: Vec<i64> = dp
        .hi
        .iter()
        .zip(&spikes.max_shift)
        .map(|(&hi, &s)| hi - s)
        .collect();
    let old_ext: Vec<usize> = old_lo
        .iter()
        .zip(&old_hi)
        .map(|(&lo, &hi)| (hi - lo + 1) as usize)
        .collect();
    let old_strides = strides(&old_ext);
    let old_size: usize = old_ext.iter().product();

    // Corner choice: the lexicographically extreme shifts are the only ones
    // whose recurrences are causal; take the better-conditioned of the two.
    let lex_max = spikes
        .spikes
        .iter()
        .max_by(|a, b| a.0.cmp(&b.0))
        .expect("non-identity members have spikes");
    let lex_min = spikes
        .spikes
        .iter()
        .min_by(|a, b| a.0.cmp(&b.0))
        .expect("non-identity members have spikes");
    let descending = lex_max.1 >= lex_min.1;
    let (corner_shift, corner_p) = if descending { lex_max } else { lex_min };

    // The flat position in the *new* box of `old key + corner`, split into a
    // constant offset plus the odometer term.
    let corner_off: usize = (0..dims)
        .map(|d| ((old_lo[d] + corner_shift[d] - dp.lo[d]) as usize) * new_strides[d])
        .sum();
    // Corrections: spikes other than the corner, referencing the
    // already-solved old cell at `key + corner − s`.
    struct Correction {
        p: f64,
        diff: Vec<i64>,
        flat: isize,
    }
    let corrections: Vec<Correction> = spikes
        .spikes
        .iter()
        .filter(|(s, _)| s != corner_shift)
        .map(|(s, p)| {
            let diff: Vec<i64> = corner_shift.iter().zip(s).map(|(&c, &s)| c - s).collect();
            let flat: isize = (0..dims)
                .map(|d| diff[d] as isize * old_strides[d] as isize)
                .sum();
            Correction { p: *p, diff, flat }
        })
        .collect();

    dp.scratch.clear();
    dp.scratch.resize(old_size, 0.0);
    let new_sum: f64 = dp.dist.iter().sum();
    let expected = new_sum / spikes.mass;
    let mut sum = 0.0f64;

    match kernel {
        KernelMode::Vectorized => {
            let last = dims - 1;
            let row_len = old_ext[last];
            let rows = old_size / row_len;
            // Corrections split by causality: `off_row` shifts touch an
            // earlier dimension and reference rows already finalized by the
            // corner-order row sweep; `in_row` shifts move only along the
            // last dimension and carry within the current row.
            let (in_row, off_row): (Vec<&Correction>, Vec<&Correction>) = corrections
                .iter()
                .partition(|c| c.diff[..last].iter().all(|&d| d == 0));
            // In corner order every in-row shift points at finalized cells
            // at distance ≥ wmin, so windows of width wmin are causal.
            let wmin: usize = in_row
                .iter()
                .map(|c| c.diff[last].unsigned_abs() as usize)
                .min()
                .unwrap_or(row_len);
            let mut pidx = vec![0i64; last];
            for rstep in 0..rows {
                let r = if descending { rows - 1 - rstep } else { rstep };
                let mut rem = r;
                let mut new_row_base = 0usize;
                for d in (0..last).rev() {
                    let v = rem % old_ext[d];
                    rem /= old_ext[d];
                    pidx[d] = v as i64;
                    new_row_base += v * new_strides[d];
                }
                let j_row = r * row_len;
                let row_end = j_row + row_len;
                let base = &dp.dist[new_row_base + corner_off..new_row_base + corner_off + row_len];
                // Split the scratch so the current row and the finalized
                // rows it reads are simultaneously borrowable.
                let (row, solved, solved_shift) = if descending {
                    let (head, solved) = dp.scratch.split_at_mut(row_end);
                    (&mut head[j_row..], &*solved, row_end as isize)
                } else {
                    let (solved, tail) = dp.scratch.split_at_mut(j_row);
                    (&mut tail[..row_len], &*solved, 0isize)
                };
                row.copy_from_slice(base);
                for corr in &off_row {
                    let row_in_bounds = (0..last).all(|d| {
                        let t = pidx[d] + corr.diff[d];
                        t >= 0 && t < old_ext[d] as i64
                    });
                    if !row_in_bounds {
                        continue;
                    }
                    let dl = corr.diff[last];
                    let clo = (-dl).max(0) as usize;
                    let chi = (row_len as i64 - dl.max(0)).max(clo as i64) as usize;
                    if clo >= chi {
                        continue;
                    }
                    let start = (j_row as isize + corr.flat + clo as isize - solved_shift) as usize;
                    let src = &solved[start..start + (chi - clo)];
                    for (o, &s) in row[clo..chi].iter_mut().zip(src) {
                        *o = fmadd(-corr.p, s, *o);
                    }
                }
                if descending {
                    let mut chi = row_len;
                    while chi > 0 {
                        let clo = chi.saturating_sub(wmin);
                        let (open, done) = row.split_at_mut(chi);
                        for corr in &in_row {
                            let dl = corr.diff[last] as usize; // > 0 when descending
                            let hi_c = chi.min(row_len.saturating_sub(dl));
                            if clo < hi_c {
                                let src = &done[clo + dl - chi..hi_c + dl - chi];
                                for (o, &s) in open[clo..hi_c].iter_mut().zip(src) {
                                    *o = fmadd(-corr.p, s, *o);
                                }
                            }
                        }
                        for o in open[clo..chi].iter_mut().rev() {
                            let mut value = *o / corner_p;
                            if value < 0.0 {
                                if value < -tolerance {
                                    return false;
                                }
                                value = 0.0;
                            }
                            *o = value;
                            sum += value;
                        }
                        chi = clo;
                    }
                } else {
                    let mut clo = 0usize;
                    while clo < row_len {
                        let chi = (clo + wmin).min(row_len);
                        let (done, open) = row.split_at_mut(clo);
                        for corr in &in_row {
                            let dl = (-corr.diff[last]) as usize; // diff < 0 ascending
                            let lo_c = clo.max(dl);
                            if lo_c < chi {
                                let src = &done[lo_c - dl..chi - dl];
                                for (o, &s) in open[lo_c - clo..chi - clo].iter_mut().zip(src) {
                                    *o = fmadd(-corr.p, s, *o);
                                }
                            }
                        }
                        for o in open[..chi - clo].iter_mut() {
                            let mut value = *o / corner_p;
                            if value < 0.0 {
                                if value < -tolerance {
                                    return false;
                                }
                                value = 0.0;
                            }
                            *o = value;
                            sum += value;
                        }
                        clo = chi;
                    }
                }
            }
        }
        KernelMode::ScalarReference => {
            let mut idx: Vec<usize> = if descending {
                old_ext.iter().map(|&e| e - 1).collect()
            } else {
                vec![0usize; dims]
            };
            let mut mapped: usize = idx.iter().zip(&new_strides).map(|(&i, &s)| i * s).sum();
            for step in 0..old_size {
                let j: usize = idx.iter().zip(&old_strides).map(|(&i, &s)| i * s).sum();
                let mut value = dp.dist[mapped + corner_off];
                for corr in &corrections {
                    let in_bounds = (0..dims).all(|d| {
                        let t = idx[d] as i64 + corr.diff[d];
                        t >= 0 && t < old_ext[d] as i64
                    });
                    if in_bounds {
                        value -= corr.p * dp.scratch[(j as isize + corr.flat) as usize];
                    }
                }
                value /= corner_p;
                if value < 0.0 {
                    if value < -tolerance {
                        return false;
                    }
                    value = 0.0;
                }
                dp.scratch[j] = value;
                sum += value;
                if step + 1 == old_size {
                    break;
                }
                let mut d = dims;
                while d > 0 {
                    d -= 1;
                    if descending {
                        if idx[d] > 0 {
                            idx[d] -= 1;
                            mapped -= new_strides[d];
                            break;
                        }
                        idx[d] = old_ext[d] - 1;
                        mapped += (old_ext[d] - 1) * new_strides[d];
                    } else {
                        idx[d] += 1;
                        mapped += new_strides[d];
                        if idx[d] < old_ext[d] {
                            break;
                        }
                        mapped -= old_ext[d] * new_strides[d];
                        idx[d] = 0;
                    }
                }
            }
        }
    }
    if (sum - expected).abs() > tolerance {
        return false;
    }
    std::mem::swap(&mut dp.dist, &mut dp.scratch);
    dp.lo = old_lo;
    dp.hi = old_hi;
    true
}

/// `H(t')`: the mass of keys deciding for the target — strictly positive
/// components against smaller labels, non-negative against larger ones.
///
/// In vectorized mode the winning region of each row is one contiguous
/// suffix (the last dimension is monotone in the key), so the sweep reduces
/// to a win test on the row's prefix index plus a slice sum.
fn h_mass(dp: &TargetDp, target: usize, kernel: KernelMode) -> f64 {
    let dims = dp.lo.len();
    // Minimum winning key value per dimension.
    let thresholds: Vec<i64> = dp
        .others
        .iter()
        .map(|&other| if other < target { 1 } else { 0 })
        .collect();
    let ext = dp.extents();
    let mut h = 0.0;
    match kernel {
        KernelMode::Vectorized => {
            let last = dims - 1;
            let row_len = ext[last];
            let rows = dp.dist.len() / row_len;
            let col_start = (thresholds[last] - dp.lo[last]).clamp(0, row_len as i64) as usize;
            for r in 0..rows {
                let mut rem = r;
                let mut wins = true;
                for d in (0..last).rev() {
                    let v = (rem % ext[d]) as i64;
                    rem /= ext[d];
                    if dp.lo[d] + v < thresholds[d] {
                        wins = false;
                    }
                }
                if wins {
                    for &mass in &dp.dist[r * row_len + col_start..(r + 1) * row_len] {
                        h += mass;
                    }
                }
            }
        }
        KernelMode::ScalarReference => {
            let mut idx = vec![0usize; dims];
            for j in 0..dp.dist.len() {
                let mass = dp.dist[j];
                if mass != 0.0 {
                    let wins = (0..dims).all(|d| dp.lo[d] + idx[d] as i64 >= thresholds[d]);
                    if wins {
                        h += mass;
                    }
                }
                if j + 1 == dp.dist.len() {
                    break;
                }
                let mut d = dims;
                while d > 0 {
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < ext[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiclass::{
        approx_multiclass_bv_jq, exact_multiclass_bv_jq, multiclass_grid_deltas,
        MultiClassBucketConfig,
    };
    use jury_model::{ConfusionMatrix, MatrixJury};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random row-stochastic confusion matrix (rows normalized, every
    /// entry at least `floor` so the matrices stay generic).
    fn random_matrix(l: usize, rng: &mut StdRng) -> ConfusionMatrix {
        let mut entries = Vec::with_capacity(l * l);
        for row in 0..l {
            let mut raw: Vec<f64> = (0..l).map(|_| rng.gen_range(0.05..1.0)).collect();
            raw[row] += rng.gen_range(0.5..2.0); // lean towards the diagonal
            let sum: f64 = raw.iter().sum();
            entries.extend(raw.into_iter().map(|v| v / sum));
        }
        ConfusionMatrix::new(l, entries).unwrap()
    }

    fn random_jury(l: usize, n: usize, seed: u64) -> MatrixJury {
        let mut rng = StdRng::seed_from_u64(seed);
        let workers = (0..n)
            .map(|i| {
                MatrixWorker::new(WorkerId(i as u32), random_matrix(l, &mut rng), 1.0).unwrap()
            })
            .collect();
        MatrixJury::new(workers).unwrap()
    }

    fn random_prior(l: usize, seed: u64) -> CategoricalPrior {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37));
        let raw: Vec<f64> = (0..l).map(|_| rng.gen_range(0.1..1.0)).collect();
        let sum: f64 = raw.iter().sum();
        CategoricalPrior::new(raw.into_iter().map(|v| v / sum).collect()).unwrap()
    }

    /// The symmetric quality whose log-ratio `ln((ℓ−1)·q/(1−q))` is exactly
    /// `m · delta`, so quantization on a grid of width `delta` is lossless.
    fn lattice_quality(m: i64, delta: f64, l: usize) -> f64 {
        let e = (m as f64 * delta).exp();
        e / (l as f64 - 1.0 + e)
    }

    proptest! {
        // Case counts stay at the (PROPTEST_CASES-overridable) default so CI
        // bounds the runtime explicitly.

        /// On the exact grids the scratch DP derives for a jury, the
        /// incremental engine reproduces the scratch tuple DP to fp noise.
        #[test]
        fn matches_the_scratch_tuple_dp_on_its_own_grid(
            seed in 0u64..1_000_000,
            l in 2usize..4,
            n in 1usize..6,
            buckets in 8usize..24,
        ) {
            let jury = random_jury(l, n, seed);
            let prior = random_prior(l, seed);
            let config = MultiClassBucketConfig { num_buckets: buckets };
            let expected = approx_multiclass_bv_jq(&jury, &prior, config).unwrap();
            let deltas = multiclass_grid_deltas(&jury, &prior, config).unwrap();
            let mut engine = IncrementalMultiClassJq::new(&prior, &deltas).unwrap();
            for worker in jury.workers() {
                engine.push_worker(worker).unwrap();
            }
            prop_assert!(
                (engine.jq() - expected).abs() < 1e-9,
                "incremental {} vs scratch {expected} (l={l}, n={n}, buckets={buckets})",
                engine.jq()
            );
        }

        /// Lattice qualities make the quantization lossless, so the dense
        /// incremental DP must agree with the exponential exact enumeration.
        #[test]
        fn lattice_juries_match_exact_enumeration(
            seed in 0u64..1_000_000,
            l in 2usize..5,
            n in 1usize..6,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let delta = rng.gen_range(0.1..0.4);
            let workers: Vec<MatrixWorker> = (0..n)
                .map(|i| {
                    let q = lattice_quality(rng.gen_range(0..=5), delta, l);
                    MatrixWorker::new(
                        WorkerId(i as u32),
                        ConfusionMatrix::from_quality(q, l).unwrap(),
                        1.0,
                    )
                    .unwrap()
                })
                .collect();
            let jury = MatrixJury::new(workers).unwrap();
            let prior = CategoricalPrior::uniform(l).unwrap();
            let exact = exact_multiclass_bv_jq(&jury, &prior).unwrap();
            let mut engine =
                IncrementalMultiClassJq::new(&prior, &vec![delta; l]).unwrap();
            for worker in jury.workers() {
                engine.push_worker(worker).unwrap();
            }
            prop_assert!(
                (engine.jq() - exact).abs() < 1e-9,
                "incremental {} vs exact {exact} (l={l}, n={n}, delta={delta})",
                engine.jq()
            );
        }

        /// Random push/pop/swap sequences never diverge from a from-scratch
        /// rebuild of the same member multiset.
        #[test]
        fn push_pop_swap_sequences_never_diverge_from_rebuild(
            seed in 0u64..1_000_000,
            l in 2usize..4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pool = random_jury(l, 6, seed ^ 0xABCD);
            let prior = random_prior(l, seed ^ 0x1234);
            let mut engine = IncrementalMultiClassJq::for_pool(
                pool.workers(),
                &prior,
                MultiClassIncrementalConfig::default().with_num_buckets(12),
            )
            .unwrap();
            let mut live: Vec<usize> = Vec::new();
            for op_index in 0..16 {
                let op = rng.gen_range(0..3);
                let outside: Vec<usize> =
                    (0..pool.size()).filter(|i| !live.contains(i)).collect();
                if (op == 0 || live.is_empty()) && !outside.is_empty() {
                    let pick = outside[rng.gen_range(0..outside.len())];
                    engine.push_worker(&pool.workers()[pick]).unwrap();
                    live.push(pick);
                } else if op == 1 || outside.is_empty() {
                    let pos = rng.gen_range(0..live.len());
                    let out = live.swap_remove(pos);
                    engine.pop_worker(&pool.workers()[out]).unwrap();
                } else {
                    let pos = rng.gen_range(0..live.len());
                    let incoming = outside[rng.gen_range(0..outside.len())];
                    let out = std::mem::replace(&mut live[pos], incoming);
                    engine
                        .swap_worker(&pool.workers()[out], &pool.workers()[incoming])
                        .unwrap();
                }
                if op_index % 4 == 3 || op_index == 15 {
                    let incremental = engine.jq();
                    let rebuilt = engine.from_scratch_jq();
                    prop_assert!(
                        (incremental - rebuilt).abs() < 1e-9,
                        "incremental {incremental} vs rebuild {rebuilt} after {:?}",
                        engine.stats()
                    );
                }
            }
            prop_assert_eq!(engine.len(), live.len());
        }

        /// The vectorized row-sliced kernels agree with the scalar odometer
        /// reference to fp noise over random push/pop/swap sequences, with a
        /// zero-tolerance sibling forcing the rebuild fallback as a third
        /// witness.
        #[test]
        fn kernel_modes_agree_over_push_pop_swap(
            seed in 0u64..1_000_000,
            l in 2usize..5,
        ) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            let pool = random_jury(l, 6, seed ^ 0x77);
            let prior = random_prior(l, seed ^ 0x99);
            let config = MultiClassIncrementalConfig::default().with_num_buckets(6);
            let mut fast = IncrementalMultiClassJq::for_pool(
                pool.workers(),
                &prior,
                config.with_kernel_mode(KernelMode::Vectorized),
            )
            .unwrap();
            let mut slow = IncrementalMultiClassJq::for_pool(
                pool.workers(),
                &prior,
                config.with_kernel_mode(KernelMode::ScalarReference),
            )
            .unwrap();
            let mut forced = IncrementalMultiClassJq::for_pool(
                pool.workers(),
                &prior,
                config.with_kernel_mode(KernelMode::Vectorized),
            )
            .unwrap()
            .with_stability_tolerance(0.0);
            let mut live: Vec<usize> = Vec::new();
            for _ in 0..12 {
                let outside: Vec<usize> =
                    (0..pool.size()).filter(|i| !live.contains(i)).collect();
                let op = rng.gen_range(0..3);
                if (op == 0 || live.is_empty()) && !outside.is_empty() {
                    let pick = outside[rng.gen_range(0..outside.len())];
                    for engine in [&mut fast, &mut slow, &mut forced] {
                        engine.push_worker(&pool.workers()[pick]).unwrap();
                    }
                    live.push(pick);
                } else if op == 1 || outside.is_empty() {
                    let out = live.swap_remove(rng.gen_range(0..live.len()));
                    for engine in [&mut fast, &mut slow, &mut forced] {
                        engine.pop_worker(&pool.workers()[out]).unwrap();
                    }
                } else {
                    let pos = rng.gen_range(0..live.len());
                    let incoming = outside[rng.gen_range(0..outside.len())];
                    let out = std::mem::replace(&mut live[pos], incoming);
                    for engine in [&mut fast, &mut slow, &mut forced] {
                        engine
                            .swap_worker(&pool.workers()[out], &pool.workers()[incoming])
                            .unwrap();
                    }
                }
                prop_assert!(
                    (fast.jq() - slow.jq()).abs() < 1e-12,
                    "vectorized {} vs scalar {}",
                    fast.jq(),
                    slow.jq()
                );
                prop_assert!(
                    (fast.jq() - forced.jq()).abs() < 1e-12,
                    "vectorized {} vs forced-rebuild {}",
                    fast.jq(),
                    forced.jq()
                );
            }
        }
    }

    #[test]
    fn forced_rebuild_fallback_gives_identical_values() {
        // Tolerance 0 makes the stability guard reject essentially every
        // deconvolution, so pops go through the rebuild path — the values
        // must not change.
        let mut rng = StdRng::seed_from_u64(97);
        let pool = random_jury(3, 7, 4242);
        let prior = random_prior(3, 4242);
        let config = MultiClassIncrementalConfig::default().with_num_buckets(12);
        let mut strict = IncrementalMultiClassJq::for_pool(pool.workers(), &prior, config)
            .unwrap()
            .with_stability_tolerance(0.0);
        let mut relaxed =
            IncrementalMultiClassJq::for_pool(pool.workers(), &prior, config).unwrap();
        let mut live: Vec<usize> = Vec::new();
        for _ in 0..30 {
            let outside: Vec<usize> = (0..pool.size()).filter(|i| !live.contains(i)).collect();
            if (live.len() < 3 || rng.gen_bool(0.6)) && !outside.is_empty() {
                let pick = outside[rng.gen_range(0..outside.len())];
                strict.push_worker(&pool.workers()[pick]).unwrap();
                relaxed.push_worker(&pool.workers()[pick]).unwrap();
                live.push(pick);
            } else {
                let out = live.swap_remove(rng.gen_range(0..live.len()));
                strict.pop_worker(&pool.workers()[out]).unwrap();
                relaxed.pop_worker(&pool.workers()[out]).unwrap();
            }
            assert!(
                (strict.jq() - relaxed.jq()).abs() < 1e-9,
                "strict {} vs relaxed {}",
                strict.jq(),
                relaxed.jq()
            );
        }
        assert!(
            strict.stats().rebuilds > relaxed.stats().rebuilds,
            "zero tolerance should force rebuilds: {:?} vs {:?}",
            strict.stats(),
            relaxed.stats()
        );
    }

    #[test]
    fn pop_of_a_stranger_is_a_typed_error_and_a_noop() {
        let pool = random_jury(3, 3, 7);
        let prior = CategoricalPrior::uniform(3).unwrap();
        let mut engine = IncrementalMultiClassJq::for_pool(
            pool.workers(),
            &prior,
            MultiClassIncrementalConfig::default(),
        )
        .unwrap();
        engine.push_worker(&pool.workers()[0]).unwrap();
        let before = engine.jq();
        let err = engine.pop_id(WorkerId(999)).unwrap_err();
        assert!(matches!(err, JqError::NotAJuryMember { .. }));
        assert_eq!(engine.jq(), before);
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let prior = CategoricalPrior::uniform(3).unwrap();
        assert!(IncrementalMultiClassJq::new(&prior, &[0.1, 0.1]).is_err());
        assert!(IncrementalMultiClassJq::new(&prior, &[0.1, -0.1, 0.1]).is_err());
        let mut engine = IncrementalMultiClassJq::new(&prior, &[0.1, 0.1, 0.1]).unwrap();
        let stranger = MatrixWorker::new(
            WorkerId(0),
            ConfusionMatrix::from_quality(0.8, 4).unwrap(),
            1.0,
        )
        .unwrap();
        assert!(engine.push_worker(&stranger).is_err());
        assert!(engine.is_empty());
    }

    #[test]
    fn cell_budget_guards_construction_and_pushes() {
        let pool = random_jury(3, 6, 11);
        let prior = CategoricalPrior::uniform(3).unwrap();
        // A one-cell budget cannot host any grid.
        let tiny = MultiClassIncrementalConfig::default().with_max_cells(8);
        assert!(matches!(
            IncrementalMultiClassJq::for_pool(pool.workers(), &prior, tiny),
            Err(JqError::StateTooLarge { .. })
        ));
        // An explicit over-fine grid trips the per-push volume check before
        // any target mutates.
        let mut engine = IncrementalMultiClassJq::new(&prior, &[1e-6, 1e-6, 1e-6]).unwrap();
        engine.max_cells = 1 << 10;
        let err = engine.push_worker(&pool.workers()[0]).unwrap_err();
        assert!(matches!(err, JqError::StateTooLarge { .. }));
        assert!(engine.is_empty());
        assert_eq!(engine.stats().pushes, 0);
    }

    #[test]
    fn for_pool_resolution_respects_the_cell_budget() {
        let config = MultiClassIncrementalConfig::default();
        // ℓ = 3 → two dimensions: (2·n·b + 1)² ≤ max_cells.
        let b = config.resolve_buckets(10, 3).unwrap();
        assert!((2 * 10 * b + 1).pow(2) <= config.max_cells);
        // Small pools keep the full requested resolution.
        assert_eq!(
            config.with_num_buckets(50).resolve_buckets(2, 3).unwrap(),
            50
        );
        // Builders clamp degenerate inputs.
        assert_eq!(
            config.with_stability_tolerance(-1.0).stability_tolerance,
            0.0
        );
        assert_eq!(config.with_num_buckets(0).num_buckets, 1);
    }

    #[test]
    fn empty_engine_reports_the_prior_argmax_mass() {
        let prior = CategoricalPrior::new(vec![0.2, 0.5, 0.3]).unwrap();
        let engine = IncrementalMultiClassJq::new(&prior, &[0.05, 0.05, 0.05]).unwrap();
        // With no votes BV picks the prior argmax (label 1) and is right
        // with probability 0.5.
        assert!((engine.jq() - 0.5).abs() < 1e-12);
        assert_eq!(engine.num_choices(), 3);
        assert_eq!(engine.deltas(), vec![0.05, 0.05, 0.05]);
    }

    #[test]
    fn failed_swap_restores_the_previous_state() {
        let pool = random_jury(3, 4, 23);
        let prior = CategoricalPrior::uniform(3).unwrap();
        let mut engine = IncrementalMultiClassJq::for_pool(
            pool.workers(),
            &prior,
            MultiClassIncrementalConfig::default().with_num_buckets(20),
        )
        .unwrap();
        for worker in &pool.workers()[..2] {
            engine.push_worker(worker).unwrap();
        }
        let before = engine.jq();
        let alien = MatrixWorker::new(
            WorkerId(77),
            ConfusionMatrix::from_quality(0.9, 4).unwrap(),
            1.0,
        )
        .unwrap();
        assert!(engine.swap_worker(&pool.workers()[0], &alien).is_err());
        assert_eq!(engine.len(), 2);
        assert!((engine.jq() - before).abs() < 1e-9);
    }
}
