//! Quantized jury signatures — hashable memoization keys for JQ values.
//!
//! The jury quality of every strategy implemented in this crate is a
//! function of only (a) the *multiset* of the jury members' qualities and
//! (b) the task prior: member order is irrelevant (both the Bayesian-voting
//! formulation and the MV Poisson-binomial dynamic program are symmetric in
//! the workers), and costs and worker ids never enter the computation.
//!
//! [`jury_signature`] exploits that: it maps a `(jury, prior)` pair to a
//! compact, hashable key by sorting the qualities and quantizing every
//! probability to [`SIGNATURE_RESOLUTION`]. Two pairs with equal signatures
//! have JQ values within the numerical noise floor of each other, so the
//! signature is a sound cache key for memoizing JQ evaluations — the basis
//! of `jury-service`'s shared evaluation cache.

use jury_model::{Jury, Prior};

/// Quantization step for probabilities entering a [`JurySignature`].
///
/// `2⁻⁴⁰ ≈ 9.1e-13` — far below the bucket approximation's error bound and
/// the `1e-9` tolerances used throughout the test-suite, so collapsing
/// qualities that differ by less changes no observable result.
pub const SIGNATURE_RESOLUTION: f64 = 1.0 / (1u64 << 40) as f64;

/// A compact, hashable identity of a `(jury, prior)` JQ evaluation.
///
/// Layout: `[quantized prior α, quantized sorted member qualities...]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JurySignature {
    words: Box<[u64]>,
}

impl JurySignature {
    /// Number of 64-bit words in the signature (jury size + 1).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the signature is empty (never true: the prior is always
    /// present).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

fn quantize(p: f64) -> u64 {
    (p / SIGNATURE_RESOLUTION).round() as u64
}

/// Computes the signature of a `(jury, prior)` pair.
pub fn jury_signature(jury: &Jury, prior: Prior) -> JurySignature {
    let mut words = Vec::with_capacity(jury.size() + 1);
    words.push(quantize(prior.alpha()));
    let mut qualities: Vec<u64> = jury
        .workers()
        .iter()
        .map(|w| quantize(w.quality()))
        .collect();
    qualities.sort_unstable();
    words.extend(qualities);
    JurySignature {
        words: words.into_boxed_slice(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{Worker, WorkerId};

    fn jury_with_costs(qualities: &[f64], costs: &[f64]) -> Jury {
        let workers: Vec<Worker> = qualities
            .iter()
            .zip(costs)
            .enumerate()
            .map(|(i, (&q, &c))| Worker::new(WorkerId(i as u32), q, c).unwrap())
            .collect();
        Jury::new(workers)
    }

    #[test]
    fn member_order_does_not_matter() {
        let a = Jury::from_qualities(&[0.9, 0.6, 0.7]).unwrap();
        let b = Jury::from_qualities(&[0.6, 0.7, 0.9]).unwrap();
        assert_eq!(
            jury_signature(&a, Prior::uniform()),
            jury_signature(&b, Prior::uniform())
        );
    }

    #[test]
    fn costs_and_ids_do_not_matter() {
        let a = jury_with_costs(&[0.8, 0.6], &[1.0, 2.0]);
        let b = jury_with_costs(&[0.8, 0.6], &[5.0, 0.0]);
        assert_eq!(
            jury_signature(&a, Prior::uniform()),
            jury_signature(&b, Prior::uniform())
        );
    }

    #[test]
    fn prior_and_qualities_do_matter() {
        let jury = Jury::from_qualities(&[0.8, 0.6]).unwrap();
        let base = jury_signature(&jury, Prior::uniform());
        assert_ne!(base, jury_signature(&jury, Prior::new(0.7).unwrap()));
        let other = Jury::from_qualities(&[0.8, 0.61]).unwrap();
        assert_ne!(base, jury_signature(&other, Prior::uniform()));
    }

    #[test]
    fn sub_resolution_differences_collapse() {
        let a = Jury::from_qualities(&[0.8]).unwrap();
        let b = Jury::from_qualities(&[0.8 + SIGNATURE_RESOLUTION / 8.0]).unwrap();
        assert_eq!(
            jury_signature(&a, Prior::uniform()),
            jury_signature(&b, Prior::uniform())
        );
    }

    #[test]
    fn empty_jury_still_has_a_prior_word() {
        let sig = jury_signature(&Jury::empty(), Prior::uniform());
        assert_eq!(sig.len(), 1);
        assert!(!sig.is_empty());
    }
}
