//! Quantized jury signatures — hashable memoization keys for JQ values.
//!
//! The jury quality of every strategy implemented in this crate is a
//! function of only (a) the *multiset* of the jury members' qualities and
//! (b) the task prior: member order is irrelevant (both the Bayesian-voting
//! formulation and the MV Poisson-binomial dynamic program are symmetric in
//! the workers), and costs and worker ids never enter the computation.
//!
//! [`jury_signature`] exploits that: it maps a `(jury, prior)` pair to a
//! compact, hashable key by sorting the qualities and quantizing every
//! probability to [`SIGNATURE_RESOLUTION`]. Two pairs with equal signatures
//! have JQ values within the numerical noise floor of each other, so the
//! signature is a sound cache key for memoizing JQ evaluations — the basis
//! of `jury-service`'s shared evaluation cache.

use jury_model::{CategoricalPrior, Jury, Label, MatrixWorker, Prior};

/// Quantization step for probabilities entering a [`JurySignature`].
///
/// `2⁻⁴⁰ ≈ 9.1e-13` — far below the bucket approximation's error bound and
/// the `1e-9` tolerances used throughout the test-suite, so collapsing
/// qualities that differ by less changes no observable result.
pub const SIGNATURE_RESOLUTION: f64 = 1.0 / (1u64 << 40) as f64;

/// A compact, hashable identity of a `(jury, prior)` JQ evaluation.
///
/// Layout: `[quantized prior α, quantized sorted member qualities...]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JurySignature {
    words: Box<[u64]>,
}

impl JurySignature {
    /// Number of 64-bit words in the signature (jury size + 1).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the signature is empty (never true: the prior is always
    /// present).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// First word of every multi-class signature, so binary and multi-class
/// entries can never collide inside a shared store: a binary signature
/// starts with a quantized probability, which is at most
/// `1 / SIGNATURE_RESOLUTION = 2⁴⁰`, far below this tag.
const MULTICLASS_SIGNATURE_TAG: u64 = u64::MAX;

fn quantize(p: f64) -> u64 {
    (p / SIGNATURE_RESOLUTION).round() as u64
}

/// Computes the signature of a `(jury, prior)` pair.
pub fn jury_signature(jury: &Jury, prior: Prior) -> JurySignature {
    let mut words = Vec::with_capacity(jury.size() + 1);
    words.push(quantize(prior.alpha()));
    let mut qualities: Vec<u64> = jury
        .workers()
        .iter()
        .map(|w| quantize(w.quality()))
        .collect();
    qualities.sort_unstable();
    words.extend(qualities);
    JurySignature {
        words: words.into_boxed_slice(),
    }
}

/// Computes the signature of a multi-class `(jury members, prior)` JQ
/// evaluation — the confusion-matrix analogue of [`jury_signature`], and the
/// key under which `jury-service` memoizes `JQ(J, BV, ~α)` values in the
/// same store as the binary entries.
///
/// `JQ(J, BV, ~α)` depends only on the *multiset* of the members' confusion
/// matrices and on the categorical prior (both the exact enumeration and the
/// Section 7 tuple-key DP are symmetric in the workers; ids and costs never
/// enter), so the signature quantizes every matrix entry and prior mass to
/// [`SIGNATURE_RESOLUTION`] and sorts the per-worker digests
/// lexicographically. The `2⁻⁴⁰` resolution is the same rounding contract
/// the grid deltas rely on: it sits far below the bucket grids'
/// `max-ratio / num_buckets` widths and the repo-wide `1e-9` tolerances, so
/// equal signatures imply JQ values within the numerical noise floor.
///
/// Layout: `[tag, ℓ, quantized prior masses…, sorted worker digests…]`,
/// where each worker digest is her ℓ² row-major quantized matrix entries.
/// The leading tag word (`u64::MAX`) keeps the key space disjoint from
/// [`jury_signature`]'s, whose first word is a quantized probability (at
/// most `2⁴⁰`).
///
/// An empty member sequence is allowed (the empty jury answers the prior
/// argmax) and signs as `[tag, ℓ, prior…]`. Members are taken by reference
/// (any iterator of `&MatrixWorker`; a slice iterates as one), so hot-path
/// callers can sign borrowed pool entries without cloning matrices.
pub fn multiclass_signature<'a, I>(members: I, prior: &CategoricalPrior) -> JurySignature
where
    I: IntoIterator<Item = &'a MatrixWorker>,
{
    let l = prior.num_choices();
    let mut digests: Vec<Vec<u64>> = members
        .into_iter()
        .map(|member| {
            (0..member.confusion().num_choices())
                .flat_map(|t| {
                    member
                        .confusion()
                        .row(Label(t))
                        .iter()
                        .map(|&p| quantize(p))
                })
                .collect()
        })
        .collect();
    digests.sort_unstable();
    let mut words = Vec::with_capacity(2 + l + digests.len() * l * l);
    words.push(MULTICLASS_SIGNATURE_TAG);
    words.push(l as u64);
    words.extend(prior.probs().iter().map(|&p| quantize(p)));
    words.extend(digests.into_iter().flatten());
    JurySignature {
        words: words.into_boxed_slice(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{Worker, WorkerId};

    fn jury_with_costs(qualities: &[f64], costs: &[f64]) -> Jury {
        let workers: Vec<Worker> = qualities
            .iter()
            .zip(costs)
            .enumerate()
            .map(|(i, (&q, &c))| Worker::new(WorkerId(i as u32), q, c).unwrap())
            .collect();
        Jury::new(workers)
    }

    #[test]
    fn member_order_does_not_matter() {
        let a = Jury::from_qualities(&[0.9, 0.6, 0.7]).unwrap();
        let b = Jury::from_qualities(&[0.6, 0.7, 0.9]).unwrap();
        assert_eq!(
            jury_signature(&a, Prior::uniform()),
            jury_signature(&b, Prior::uniform())
        );
    }

    #[test]
    fn costs_and_ids_do_not_matter() {
        let a = jury_with_costs(&[0.8, 0.6], &[1.0, 2.0]);
        let b = jury_with_costs(&[0.8, 0.6], &[5.0, 0.0]);
        assert_eq!(
            jury_signature(&a, Prior::uniform()),
            jury_signature(&b, Prior::uniform())
        );
    }

    #[test]
    fn prior_and_qualities_do_matter() {
        let jury = Jury::from_qualities(&[0.8, 0.6]).unwrap();
        let base = jury_signature(&jury, Prior::uniform());
        assert_ne!(base, jury_signature(&jury, Prior::new(0.7).unwrap()));
        let other = Jury::from_qualities(&[0.8, 0.61]).unwrap();
        assert_ne!(base, jury_signature(&other, Prior::uniform()));
    }

    #[test]
    fn sub_resolution_differences_collapse() {
        let a = Jury::from_qualities(&[0.8]).unwrap();
        let b = Jury::from_qualities(&[0.8 + SIGNATURE_RESOLUTION / 8.0]).unwrap();
        assert_eq!(
            jury_signature(&a, Prior::uniform()),
            jury_signature(&b, Prior::uniform())
        );
    }

    #[test]
    fn empty_jury_still_has_a_prior_word() {
        let sig = jury_signature(&Jury::empty(), Prior::uniform());
        assert_eq!(sig.len(), 1);
        assert!(!sig.is_empty());
    }

    fn matrix_workers(qualities: &[f64], costs: &[f64], l: usize) -> Vec<MatrixWorker> {
        jury_model::MatrixPool::from_qualities_and_costs(qualities, costs, l)
            .unwrap()
            .workers()
            .to_vec()
    }

    #[test]
    fn multiclass_member_order_and_costs_do_not_matter() {
        let prior = CategoricalPrior::uniform(3).unwrap();
        let a = matrix_workers(&[0.9, 0.6, 0.7], &[1.0, 2.0, 3.0], 3);
        let mut b = matrix_workers(&[0.9, 0.6, 0.7], &[5.0, 0.5, 1.5], 3);
        b.reverse();
        assert_eq!(
            multiclass_signature(&a, &prior),
            multiclass_signature(&b, &prior)
        );
    }

    #[test]
    fn multiclass_matrices_and_prior_do_matter() {
        let prior = CategoricalPrior::uniform(3).unwrap();
        let a = matrix_workers(&[0.9, 0.6], &[1.0, 1.0], 3);
        let base = multiclass_signature(&a, &prior);
        let other = matrix_workers(&[0.9, 0.61], &[1.0, 1.0], 3);
        assert_ne!(base, multiclass_signature(&other, &prior));
        let skewed = CategoricalPrior::new(vec![0.5, 0.3, 0.2]).unwrap();
        assert_ne!(base, multiclass_signature(&a, &skewed));
    }

    #[test]
    fn multiclass_signatures_never_collide_with_binary_ones() {
        // A 2-class matrix pool and the binary jury of the same qualities
        // describe the same statistical object, but the stores behind the
        // service cache key them through different engines — the tag word
        // must keep them apart.
        let prior = CategoricalPrior::uniform(2).unwrap();
        let members = matrix_workers(&[0.8, 0.6], &[1.0, 1.0], 2);
        let multi = multiclass_signature(&members, &prior);
        let binary = jury_signature(
            &Jury::from_qualities(&[0.8, 0.6]).unwrap(),
            Prior::uniform(),
        );
        assert_ne!(multi, binary);
        assert_eq!(multi.len(), 2 + 2 + 2 * 4);
    }

    #[test]
    fn multiclass_empty_member_slice_signs_the_prior_alone() {
        let prior = CategoricalPrior::new(vec![0.2, 0.5, 0.3]).unwrap();
        let sig = multiclass_signature(&[] as &[MatrixWorker], &prior);
        assert_eq!(sig.len(), 2 + 3);
        assert!(!sig.is_empty());
    }
}
