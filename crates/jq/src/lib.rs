//! # jury-jq
//!
//! Jury Quality computation for *"On Optimality of Jury Selection in
//! Crowdsourcing"* (EDBT 2015).
//!
//! The Jury Quality `JQ(J, S, α) = Pr(S(V) = t)` (Definition 3) measures how
//! likely a voting strategy is to recover the true answer from a jury's
//! votes. This crate provides every JQ back-end the paper needs:
//!
//! * [`exact::exact_jq`] — exhaustive enumeration for any strategy
//!   (exponential; ground truth for tests and small experiments);
//! * [`exact::exact_bv_jq`] — the `Σ_V max(P_0, P_1)` formulation for
//!   Bayesian voting;
//! * [`mv::mv_jq`] — exact polynomial JQ for Majority Voting via a
//!   Poisson-binomial dynamic program (the quantity the MVJS baseline
//!   optimizes);
//! * [`bucket::BucketJqEstimator`] — Algorithm 1: the bucket-based
//!   approximation of `JQ(J, BV, α)` with Algorithm 2 pruning, Theorem 3
//!   prior folding, and the Section 4.4 error bound, over a dense,
//!   offset-indexed bucket array;
//! * [`incremental::IncrementalJq`] / [`incremental::IncrementalMvJq`] —
//!   stateful engines that `push`/`pop`/`swap` one worker at a time, so the
//!   JSP searches pay `O(buckets)` per neighbour jury instead of rebuilding
//!   the dynamic program from scratch;
//! * [`multiclass`] — Section 7's extension to multiple-choice tasks and
//!   confusion-matrix workers;
//! * [`multiclass_incremental::IncrementalMultiClassJq`] — the Section 7
//!   tuple-key DP under the same push/pop/swap contract, so multi-class
//!   selection shares the solvers' incremental hot path;
//! * [`estimator::JqEngine`] — a facade picking the right back-end.
//!
//! Size preconditions are reported as typed [`JqError`] values — no JQ entry
//! point panics on oversized input.
//!
//! ```
//! use jury_model::{Jury, Prior};
//! use jury_jq::{exact_bv_jq, mv_jq, BucketJqEstimator};
//!
//! // Figure 2's jury: qualities 0.9, 0.6, 0.6 under a uniform prior.
//! let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
//! let mv = mv_jq(&jury, Prior::uniform()).unwrap();
//! let bv = exact_bv_jq(&jury, Prior::uniform()).unwrap();
//! assert!((mv - 0.792).abs() < 1e-12);   // Example 2
//! assert!((bv - 0.900).abs() < 1e-12);   // Example 3
//!
//! // The polynomial-time approximation agrees to within its error bound.
//! let approx = BucketJqEstimator::default().jq(&jury, Prior::uniform());
//! assert!((approx - bv).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod bucket;
pub mod error;
pub mod estimator;
pub mod exact;
pub mod hardness;
pub mod incremental;
pub mod kernel;
pub mod multiclass;
pub mod multiclass_incremental;
pub mod mv;
pub mod prior;
pub mod prune;
pub mod signature;

pub use bounds::{error_bound, recommended_buckets, recommended_multiplier};
pub use bucket::{bucket_index, bv_jq, BucketCount, BucketJqConfig, BucketJqEstimator, JqEstimate};
pub use error::{JqError, JqResult};
pub use estimator::{JqBackend, JqEngine, JqValue};
pub use exact::{exact_bv_jq, exact_jq, MAX_EXACT_JURY};
pub use hardness::{has_equal_partition, partition_gadget};
pub use incremental::{IncrementalJq, IncrementalJqConfig, IncrementalMvJq, IncrementalStats};
pub use kernel::{JqScratch, KernelMode, SharedJqScratch};
pub use multiclass::{
    approx_multiclass_bv_jq, exact_multiclass_bv_jq, exact_multiclass_jq, multiclass_grid_deltas,
    MultiClassBucketConfig,
};
pub use multiclass_incremental::{IncrementalMultiClassJq, MultiClassIncrementalConfig};
pub use mv::mv_jq;
pub use prior::{fold_prior, PRIOR_PSEUDO_WORKER_ID};
pub use prune::PruneStats;
pub use signature::{jury_signature, multiclass_signature, JurySignature, SIGNATURE_RESOLUTION};

#[cfg(test)]
mod proptests {
    use super::*;
    use jury_model::{Jury, Prior, Worker, WorkerId};
    use jury_voting::all_strategies;
    use proptest::prelude::*;

    fn quality_vec() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(
            (0.5f64..0.98).prop_map(|q| (q * 100.0).round() / 100.0),
            1..8,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Corollary 1: BV dominates every strategy in the catalogue, for
        /// random juries and priors.
        #[test]
        fn bv_is_optimal(qualities in quality_vec(), alpha in 0.05f64..0.95) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let bv = exact_bv_jq(&jury, prior).unwrap();
            for entry in all_strategies() {
                let other = exact_jq(&jury, entry.strategy.as_ref(), prior).unwrap();
                prop_assert!(other <= bv + 1e-9,
                    "{} beat BV: {other} > {bv}", entry.name());
            }
        }

        /// Lemma 1: adding a worker never decreases JQ(BV).
        #[test]
        fn jq_is_monotone_in_jury_size(
            qualities in quality_vec(),
            extra in 0.5f64..0.99,
            alpha in 0.05f64..0.95,
        ) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let before = exact_bv_jq(&jury, prior).unwrap();
            let bigger = jury.with_worker(
                Worker::free(WorkerId(1000), extra).unwrap());
            let after = exact_bv_jq(&bigger, prior).unwrap();
            prop_assert!(after >= before - 1e-9,
                "adding a {extra} worker dropped JQ from {before} to {after}");
        }

        /// Lemma 2: raising a worker's quality never decreases JQ(BV).
        #[test]
        fn jq_is_monotone_in_worker_quality(
            qualities in quality_vec(),
            bump in 0.0f64..0.3,
            alpha in 0.05f64..0.95,
        ) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let before = exact_bv_jq(&jury, prior).unwrap();
            let mut improved = qualities.clone();
            improved[0] = (improved[0] + bump).min(1.0);
            let better = Jury::from_qualities(&improved).unwrap();
            let after = exact_bv_jq(&better, prior).unwrap();
            prop_assert!(after >= before - 1e-9,
                "raising quality {} -> {} dropped JQ {before} -> {after}",
                qualities[0], improved[0]);
        }

        /// The bucket approximation honours its analytic error bound and the
        /// paper's 1 % guarantee at the recommended setting.
        #[test]
        fn bucket_error_is_bounded(qualities in quality_vec(), alpha in 0.05f64..0.95) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let exact = exact_bv_jq(&jury, prior).unwrap();
            let est = BucketJqEstimator::default().estimate(&jury, prior);
            prop_assert!((exact - est.value).abs() <= est.error_bound.max(0.01) + 1e-9,
                "error {} exceeds bound {}", (exact - est.value).abs(), est.error_bound);
            prop_assert!((exact - est.value).abs() <= 0.01 + 1e-9);
        }

        /// Theorem 3 at the approximation level: folding the prior into a
        /// pseudo-worker gives the same estimate as passing the prior.
        #[test]
        fn prior_folding_is_consistent(qualities in quality_vec(), alpha in 0.05f64..0.95) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let est = BucketJqEstimator::default();
            let direct = est.jq(&jury, prior);
            let folded = est.jq(&fold_prior(&jury, prior), Prior::uniform());
            prop_assert!((direct - folded).abs() < 1e-9);
        }

        /// The MV dynamic program always returns a probability and never
        /// exceeds the optimal strategy's quality.
        #[test]
        fn mv_jq_is_dominated_by_bv(qualities in quality_vec(), alpha in 0.05f64..0.95) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let mv = mv_jq(&jury, prior).unwrap();
            let bv = exact_bv_jq(&jury, prior).unwrap();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&mv));
            prop_assert!(mv <= bv + 1e-9);
        }

        /// Deconvolution-fallback safety: random push/pop/swap sequences on
        /// the incremental engine never diverge from a from-scratch rebuild
        /// of the same member multiset.
        #[test]
        fn incremental_never_diverges_from_rebuild(
            qualities in quality_vec(),
            swaps in proptest::collection::vec(0.5f64..0.98, 1..6),
        ) {
            let mut engine = IncrementalJq::new(0.03);
            for &q in &qualities {
                engine.push_quality(q);
            }
            let mut live = qualities.clone();
            for &incoming in &swaps {
                let out = live.remove(0);
                live.push(incoming);
                engine.swap_quality(out, incoming).unwrap();
                prop_assert!(
                    (engine.jq() - engine.from_scratch_jq()).abs() < 1e-9,
                    "incremental {} vs rebuild {} after stats {:?}",
                    engine.jq(), engine.from_scratch_jq(), engine.stats());
            }
            // Pop everything back down to the empty state.
            for &q in &live {
                engine.pop_quality(q).unwrap();
            }
            prop_assert!((engine.jq() - 0.5).abs() < 1e-9);
        }

        /// On the grid the scratch estimator derives for a jury, the
        /// incremental engine reproduces the scratch bucket DP.
        #[test]
        fn incremental_matches_scratch_dp(qualities in quality_vec()) {
            let num_buckets = 64usize;
            let jury = Jury::from_qualities(&qualities).unwrap();
            let scratch = BucketJqEstimator::new(
                BucketJqConfig::default()
                    .with_buckets(BucketCount::Fixed(num_buckets))
                    .with_high_quality_shortcut(false),
            )
            .jq(&jury, Prior::uniform());
            let upper = qualities
                .iter()
                .map(|&q| jury_model::log_odds(q.max(1.0 - q)))
                .fold(0.0f64, f64::max);
            let delta = if upper > 0.0 { upper / num_buckets as f64 } else { 0.0 };
            let mut engine = IncrementalJq::new(delta);
            for &q in &qualities {
                engine.push_quality(q);
            }
            prop_assert!((engine.jq() - scratch).abs() < 1e-9,
                "incremental {} vs scratch {scratch}", engine.jq());
        }
    }
}
