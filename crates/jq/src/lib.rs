//! # jury-jq
//!
//! Jury Quality computation for *"On Optimality of Jury Selection in
//! Crowdsourcing"* (EDBT 2015).
//!
//! The Jury Quality `JQ(J, S, α) = Pr(S(V) = t)` (Definition 3) measures how
//! likely a voting strategy is to recover the true answer from a jury's
//! votes. This crate provides every JQ back-end the paper needs:
//!
//! * [`exact::exact_jq`] — exhaustive enumeration for any strategy
//!   (exponential; ground truth for tests and small experiments);
//! * [`exact::exact_bv_jq`] — the `Σ_V max(P_0, P_1)` formulation for
//!   Bayesian voting;
//! * [`mv::mv_jq`] — exact polynomial JQ for Majority Voting via a
//!   Poisson-binomial dynamic program (the quantity the MVJS baseline
//!   optimizes);
//! * [`bucket::BucketJqEstimator`] — Algorithm 1: the bucket-based
//!   approximation of `JQ(J, BV, α)` with Algorithm 2 pruning, Theorem 3
//!   prior folding, and the Section 4.4 error bound;
//! * [`multiclass`] — Section 7's extension to multiple-choice tasks and
//!   confusion-matrix workers;
//! * [`estimator::JqEngine`] — a facade picking the right back-end.
//!
//! ```
//! use jury_model::{Jury, Prior};
//! use jury_jq::{exact_bv_jq, mv_jq, BucketJqEstimator};
//!
//! // Figure 2's jury: qualities 0.9, 0.6, 0.6 under a uniform prior.
//! let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
//! let mv = mv_jq(&jury, Prior::uniform()).unwrap();
//! let bv = exact_bv_jq(&jury, Prior::uniform()).unwrap();
//! assert!((mv - 0.792).abs() < 1e-12);   // Example 2
//! assert!((bv - 0.900).abs() < 1e-12);   // Example 3
//!
//! // The polynomial-time approximation agrees to within its error bound.
//! let approx = BucketJqEstimator::default().jq(&jury, Prior::uniform());
//! assert!((approx - bv).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod bucket;
pub mod estimator;
pub mod exact;
pub mod hardness;
pub mod multiclass;
pub mod mv;
pub mod prior;
pub mod prune;
pub mod signature;

pub use bounds::{error_bound, recommended_buckets, recommended_multiplier};
pub use bucket::{bv_jq, BucketCount, BucketJqConfig, BucketJqEstimator, JqEstimate};
pub use estimator::{JqBackend, JqEngine, JqValue};
pub use exact::{exact_bv_jq, exact_jq, MAX_EXACT_JURY};
pub use hardness::{has_equal_partition, partition_gadget};
pub use multiclass::{
    approx_multiclass_bv_jq, exact_multiclass_bv_jq, exact_multiclass_jq, MultiClassBucketConfig,
};
pub use mv::mv_jq;
pub use prior::{fold_prior, PRIOR_PSEUDO_WORKER_ID};
pub use prune::PruneStats;
pub use signature::{jury_signature, JurySignature, SIGNATURE_RESOLUTION};

#[cfg(test)]
mod proptests {
    use super::*;
    use jury_model::{Jury, Prior, Worker, WorkerId};
    use jury_voting::all_strategies;
    use proptest::prelude::*;

    fn quality_vec() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(
            (0.5f64..0.98).prop_map(|q| (q * 100.0).round() / 100.0),
            1..8,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Corollary 1: BV dominates every strategy in the catalogue, for
        /// random juries and priors.
        #[test]
        fn bv_is_optimal(qualities in quality_vec(), alpha in 0.05f64..0.95) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let bv = exact_bv_jq(&jury, prior).unwrap();
            for entry in all_strategies() {
                let other = exact_jq(&jury, entry.strategy.as_ref(), prior).unwrap();
                prop_assert!(other <= bv + 1e-9,
                    "{} beat BV: {other} > {bv}", entry.name());
            }
        }

        /// Lemma 1: adding a worker never decreases JQ(BV).
        #[test]
        fn jq_is_monotone_in_jury_size(
            qualities in quality_vec(),
            extra in 0.5f64..0.99,
            alpha in 0.05f64..0.95,
        ) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let before = exact_bv_jq(&jury, prior).unwrap();
            let bigger = jury.with_worker(
                Worker::free(WorkerId(1000), extra).unwrap());
            let after = exact_bv_jq(&bigger, prior).unwrap();
            prop_assert!(after >= before - 1e-9,
                "adding a {extra} worker dropped JQ from {before} to {after}");
        }

        /// Lemma 2: raising a worker's quality never decreases JQ(BV).
        #[test]
        fn jq_is_monotone_in_worker_quality(
            qualities in quality_vec(),
            bump in 0.0f64..0.3,
            alpha in 0.05f64..0.95,
        ) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let before = exact_bv_jq(&jury, prior).unwrap();
            let mut improved = qualities.clone();
            improved[0] = (improved[0] + bump).min(1.0);
            let better = Jury::from_qualities(&improved).unwrap();
            let after = exact_bv_jq(&better, prior).unwrap();
            prop_assert!(after >= before - 1e-9,
                "raising quality {} -> {} dropped JQ {before} -> {after}",
                qualities[0], improved[0]);
        }

        /// The bucket approximation honours its analytic error bound and the
        /// paper's 1 % guarantee at the recommended setting.
        #[test]
        fn bucket_error_is_bounded(qualities in quality_vec(), alpha in 0.05f64..0.95) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let exact = exact_bv_jq(&jury, prior).unwrap();
            let est = BucketJqEstimator::default().estimate(&jury, prior);
            prop_assert!((exact - est.value).abs() <= est.error_bound.max(0.01) + 1e-9,
                "error {} exceeds bound {}", (exact - est.value).abs(), est.error_bound);
            prop_assert!((exact - est.value).abs() <= 0.01 + 1e-9);
        }

        /// Theorem 3 at the approximation level: folding the prior into a
        /// pseudo-worker gives the same estimate as passing the prior.
        #[test]
        fn prior_folding_is_consistent(qualities in quality_vec(), alpha in 0.05f64..0.95) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let est = BucketJqEstimator::default();
            let direct = est.jq(&jury, prior);
            let folded = est.jq(&fold_prior(&jury, prior), Prior::uniform());
            prop_assert!((direct - folded).abs() < 1e-9);
        }

        /// The MV dynamic program always returns a probability and never
        /// exceeds the optimal strategy's quality.
        #[test]
        fn mv_jq_is_dominated_by_bv(qualities in quality_vec(), alpha in 0.05f64..0.95) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let mv = mv_jq(&jury, prior).unwrap();
            let bv = exact_bv_jq(&jury, prior).unwrap();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&mv));
            prop_assert!(mv <= bv + 1e-9);
        }
    }
}
