//! Jury Quality for multiple-choice tasks under the confusion-matrix worker
//! model (Section 7).
//!
//! The definition generalizes Equation 9: `JQ = Σ_{t'} α_{t'} H(t')` with
//! `H(t') = Σ_V Pr(V | t = t') · E[1_{S(V) = t'}]`. Bayesian voting remains
//! optimal (Equation 10), and its JQ can be computed either exactly by
//! enumerating the `ℓ^n` votings, or approximately by the tuple-key
//! generalization of Algorithm 1 sketched at the end of Section 7: for every
//! candidate answer `t'`, track the bucketed vector of log posterior ratios
//! against every other label and accumulate `Pr(V | t')` per key; a voting is
//! decided for `t'` iff all components are non-negative.

use std::collections::HashMap;

use jury_model::{
    enumerate_label_votings, CategoricalPrior, Label, MatrixJury, ModelError, ModelResult,
};
use jury_voting::MultiClassVotingStrategy;

use crate::error::{JqError, JqResult};

/// Largest voting-space size accepted by the exact enumeration.
const MAX_ENUMERATION: u64 = 1 << 22;

/// Checks the `ℓ^n` voting-space limit of the exact enumerations.
fn check_enumeration_size(jury: &MatrixJury) -> JqResult<()> {
    let space = (jury.num_choices() as u64).saturating_pow(jury.size() as u32);
    if space <= MAX_ENUMERATION {
        Ok(())
    } else {
        Err(JqError::EnumerationTooLarge {
            votings: space,
            max: MAX_ENUMERATION,
        })
    }
}

/// Probabilities are clamped to this floor before taking logarithms so that
/// zero entries of a confusion matrix stay finite.
const LOG_FLOOR: f64 = 1e-12;

/// `ln p − ln q` with both probabilities clamped to [`LOG_FLOOR`], the
/// log-ratio increment used by every multi-class bucket DP in this crate.
/// Shared between the scratch DP below and
/// [`crate::multiclass_incremental::IncrementalMultiClassJq`] so the two
/// quantize identically on the same grid.
#[inline]
pub(crate) fn clamped_log_ratio(p: f64, q: f64) -> f64 {
    p.max(LOG_FLOOR).ln() - q.max(LOG_FLOOR).ln()
}

/// The largest absolute log-ratio any vote of any of `workers` (or the
/// prior) can contribute to the tuple key of target label `target` — the
/// quantity whose division by the bucket count yields the grid width.
pub(crate) fn target_max_abs_ratio(
    workers: &[jury_model::MatrixWorker],
    prior: &CategoricalPrior,
    target: Label,
) -> f64 {
    let l = prior.num_choices();
    let mut max_abs: f64 = 0.0;
    for i in (0..l).filter(|&i| i != target.index()) {
        max_abs = max_abs.max(clamped_log_ratio(prior.prob(target), prior.prob(Label(i))).abs());
        for worker in workers {
            for k in 0..l {
                let r = clamped_log_ratio(
                    worker.prob(target, Label(k)),
                    worker.prob(Label(i), Label(k)),
                );
                max_abs = max_abs.max(r.abs());
            }
        }
    }
    max_abs
}

/// The per-target grid widths `δ_{t'}` the tuple-key DP derives for a jury:
/// the largest absolute log-ratio reachable for that target (workers and
/// prior included) divided by the configured bucket count, or `0.0` when
/// every ratio is zero. [`approx_multiclass_bv_jq`] quantizes on exactly
/// these grids, so an incremental engine constructed with the same deltas
/// reproduces the scratch DP bucket for bucket.
///
/// # Errors
///
/// Returns [`ModelError::InvalidPriorVector`] when the prior's label count
/// does not match the jury's.
pub fn multiclass_grid_deltas(
    jury: &MatrixJury,
    prior: &CategoricalPrior,
    config: MultiClassBucketConfig,
) -> ModelResult<Vec<f64>> {
    check_dimensions(jury, prior)?;
    Ok((0..jury.num_choices())
        .map(|t| {
            let max_abs = target_max_abs_ratio(jury.workers(), prior, Label(t));
            if max_abs > 0.0 {
                max_abs / config.num_buckets.max(1) as f64
            } else {
                0.0
            }
        })
        .collect())
}

/// Exact JQ of an arbitrary multi-class strategy by enumerating all `ℓ^n`
/// votings (Equation 9).
///
/// # Errors
///
/// Returns [`JqError::EnumerationTooLarge`] when `ℓ^n` exceeds the supported
/// voting-space size, and [`JqError::Model`] on dimension mismatches.
pub fn exact_multiclass_jq(
    jury: &MatrixJury,
    strategy: &dyn MultiClassVotingStrategy,
    prior: &CategoricalPrior,
) -> JqResult<f64> {
    check_dimensions(jury, prior)?;
    check_enumeration_size(jury)?;
    let l = jury.num_choices();
    let n = jury.size();
    let mut jq = 0.0;
    for votes in enumerate_label_votings(n, l) {
        for t in 0..l {
            let truth = Label(t);
            let p_v = jury.voting_likelihood(&votes, truth)?;
            if p_v == 0.0 {
                continue;
            }
            let h = strategy.prob_label(jury, &votes, prior, truth)?;
            jq += prior.prob(truth) * p_v * h;
        }
    }
    Ok(jq)
}

/// Exact JQ of multi-class Bayesian voting using the `max` formulation:
/// `JQ(BV) = Σ_V max_{t'} α_{t'} Pr(V | t = t')`.
///
/// # Errors
///
/// Returns [`JqError::EnumerationTooLarge`] when `ℓ^n` exceeds the supported
/// voting-space size, and [`JqError::Model`] on dimension mismatches.
pub fn exact_multiclass_bv_jq(jury: &MatrixJury, prior: &CategoricalPrior) -> JqResult<f64> {
    check_dimensions(jury, prior)?;
    check_enumeration_size(jury)?;
    let l = jury.num_choices();
    let n = jury.size();
    let mut jq = 0.0;
    for votes in enumerate_label_votings(n, l) {
        let mut best = 0.0f64;
        for t in 0..l {
            let w = prior.prob(Label(t)) * jury.voting_likelihood(&votes, Label(t))?;
            best = best.max(w);
        }
        jq += best;
    }
    Ok(jq)
}

/// Configuration of the approximate multi-class JQ computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiClassBucketConfig {
    /// Number of buckets used to quantize each log-ratio dimension.
    pub num_buckets: usize,
}

impl Default for MultiClassBucketConfig {
    fn default() -> Self {
        MultiClassBucketConfig { num_buckets: 400 }
    }
}

/// Approximate `JQ(J, BV, ~α)` for the confusion-matrix model via the
/// tuple-key dynamic program of Section 7.
///
/// For every candidate answer `t'`, the key of the map is the vector (over
/// the other labels `i ≠ t'`) of bucketed values of
/// `ln (α_{t'} Pr(V | t')) − ln (α_i Pr(V | i))`; the associated probability
/// accumulates `Pr(V | t')`. After all workers are folded in, the mass of
/// keys whose components are all non-negative (strictly positive for labels
/// smaller than `t'`, matching the deterministic tie-break of
/// [`jury_voting::BayesianMultiClassVoting`]) is `H(t')`.
pub fn approx_multiclass_bv_jq(
    jury: &MatrixJury,
    prior: &CategoricalPrior,
    config: MultiClassBucketConfig,
) -> ModelResult<f64> {
    let deltas = multiclass_grid_deltas(jury, prior, config)?;
    let mut jq = 0.0;
    for (t, &delta) in deltas.iter().enumerate() {
        jq += prior.prob(Label(t)) * h_for_target(jury, prior, Label(t), delta);
    }
    Ok(jq.clamp(0.0, 1.0))
}

fn check_dimensions(jury: &MatrixJury, prior: &CategoricalPrior) -> ModelResult<()> {
    if prior.num_choices() != jury.num_choices() {
        return Err(ModelError::InvalidPriorVector {
            reason: format!(
                "prior has {} classes but the jury votes over {}",
                prior.num_choices(),
                jury.num_choices()
            ),
        });
    }
    Ok(())
}

/// `H(t') = Σ_V Pr(V | t') 1{BV(V) = t'}` via the bucketed tuple DP on the
/// grid of width `delta` (see [`multiclass_grid_deltas`]).
fn h_for_target(jury: &MatrixJury, prior: &CategoricalPrior, target: Label, delta: f64) -> f64 {
    let l = jury.num_choices();
    let others: Vec<usize> = (0..l).filter(|&i| i != target.index()).collect();

    // Pre-compute, per worker and per vote, the probability Pr(v | t') and
    // the log-ratio increments against every other label.
    struct WorkerIncrements {
        /// `Pr(vote = k | t = target)` for every k.
        prob_given_target: Vec<f64>,
        /// `ln Pr(k | target) − ln Pr(k | other)` for every k and other-label.
        log_ratios: Vec<Vec<f64>>,
    }

    let mut increments = Vec::with_capacity(jury.size());
    for worker in jury.workers() {
        let mut prob_given_target = Vec::with_capacity(l);
        let mut log_ratios = Vec::with_capacity(l);
        for k in 0..l {
            let p_t = worker.prob(target, Label(k));
            prob_given_target.push(p_t);
            let ratios: Vec<f64> = others
                .iter()
                .map(|&i| clamped_log_ratio(p_t, worker.prob(Label(i), Label(k))))
                .collect();
            log_ratios.push(ratios);
        }
        increments.push(WorkerIncrements {
            prob_given_target,
            log_ratios,
        });
    }

    // The prior contributes the initial key ln α_{t'} − ln α_i.
    let initial_ratios: Vec<f64> = others
        .iter()
        .map(|&i| clamped_log_ratio(prior.prob(target), prior.prob(Label(i))))
        .collect();

    let quantize = |x: f64| -> i32 {
        if delta > 0.0 {
            (x / delta).round() as i32
        } else {
            0
        }
    };

    let initial_key: Vec<i32> = initial_ratios.iter().map(|&r| quantize(r)).collect();
    let mut current: HashMap<Vec<i32>, f64> = HashMap::from([(initial_key, 1.0f64)]);

    for inc in &increments {
        let mut next: HashMap<Vec<i32>, f64> = HashMap::with_capacity(current.len() * l);
        for (key, &prob) in &current {
            for k in 0..l {
                let p = inc.prob_given_target[k];
                if p <= 0.0 {
                    continue;
                }
                let mut new_key = key.clone();
                for (slot, &r) in new_key.iter_mut().zip(inc.log_ratios[k].iter()) {
                    *slot += quantize(r);
                }
                *next.entry(new_key).or_insert(0.0) += prob * p;
            }
        }
        current = next;
    }

    // BV ties break towards the smaller label: against a smaller label the
    // target must win strictly, against a larger label a tie suffices.
    let mut h = 0.0;
    'keys: for (key, &prob) in &current {
        for (slot, &other) in key.iter().zip(others.iter()) {
            let wins = if other < target.index() {
                *slot > 0
            } else {
                *slot >= 0
            };
            if !wins {
                continue 'keys;
            }
        }
        h += prob;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{Jury, Prior};
    use jury_voting::{BayesianMultiClassVoting, PluralityVoting};

    use crate::exact::exact_bv_jq;

    #[test]
    fn two_class_exact_matches_binary_exact() {
        // With ℓ = 2 and symmetric confusion matrices the multi-class JQ must
        // coincide with the binary JQ.
        let qualities = [0.9, 0.6, 0.6];
        let matrix_jury = MatrixJury::from_qualities(&qualities, 2).unwrap();
        let binary_jury = Jury::from_qualities(&qualities).unwrap();
        for alpha in [0.3, 0.5, 0.8] {
            let prior2 = CategoricalPrior::new(vec![alpha, 1.0 - alpha]).unwrap();
            let multi = exact_multiclass_bv_jq(&matrix_jury, &prior2).unwrap();
            let binary = exact_bv_jq(&binary_jury, Prior::new(alpha).unwrap()).unwrap();
            assert!(
                (multi - binary).abs() < 1e-10,
                "alpha={alpha}: {multi} vs {binary}"
            );
        }
    }

    #[test]
    fn bv_formulations_agree() {
        let jury = MatrixJury::from_qualities(&[0.8, 0.65, 0.6], 3).unwrap();
        let prior = CategoricalPrior::new(vec![0.5, 0.3, 0.2]).unwrap();
        let via_strategy =
            exact_multiclass_jq(&jury, &BayesianMultiClassVoting::new(), &prior).unwrap();
        let via_max = exact_multiclass_bv_jq(&jury, &prior).unwrap();
        assert!(
            (via_strategy - via_max).abs() < 1e-10,
            "{via_strategy} vs {via_max}"
        );
    }

    #[test]
    fn bv_dominates_plurality() {
        let jury = MatrixJury::from_qualities(&[0.9, 0.5, 0.45, 0.7], 3).unwrap();
        let prior = CategoricalPrior::uniform(3).unwrap();
        let bv = exact_multiclass_bv_jq(&jury, &prior).unwrap();
        let plurality = exact_multiclass_jq(&jury, &PluralityVoting::new(), &prior).unwrap();
        assert!(
            bv >= plurality - 1e-12,
            "BV {bv} must dominate plurality {plurality}"
        );
        assert!((0.0..=1.0 + 1e-12).contains(&bv));
    }

    #[test]
    fn approximation_matches_exact_on_small_juries() {
        let configs = [
            (vec![0.8, 0.65, 0.6], 3, vec![0.5, 0.3, 0.2]),
            (vec![0.7, 0.7], 3, vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
            (vec![0.9, 0.6, 0.55, 0.5], 4, vec![0.25, 0.25, 0.25, 0.25]),
            (vec![0.6; 5], 2, vec![0.4, 0.6]),
        ];
        for (qualities, l, prior_vec) in configs {
            let jury = MatrixJury::from_qualities(&qualities, l).unwrap();
            let prior = CategoricalPrior::new(prior_vec).unwrap();
            let exact = exact_multiclass_bv_jq(&jury, &prior).unwrap();
            let approx =
                approx_multiclass_bv_jq(&jury, &prior, MultiClassBucketConfig::default()).unwrap();
            assert!(
                (exact - approx).abs() < 5e-3,
                "qualities {qualities:?} l={l}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn approximation_handles_asymmetric_confusion_matrices() {
        use jury_model::{ConfusionMatrix, MatrixWorker, WorkerId};
        let workers = vec![
            MatrixWorker::new(
                WorkerId(0),
                ConfusionMatrix::new(3, vec![0.8, 0.1, 0.1, 0.2, 0.7, 0.1, 0.05, 0.15, 0.8])
                    .unwrap(),
                1.0,
            )
            .unwrap(),
            MatrixWorker::new(
                WorkerId(1),
                ConfusionMatrix::new(3, vec![0.6, 0.2, 0.2, 0.3, 0.5, 0.2, 0.1, 0.3, 0.6]).unwrap(),
                1.0,
            )
            .unwrap(),
            MatrixWorker::new(
                WorkerId(2),
                ConfusionMatrix::from_quality(0.7, 3).unwrap(),
                1.0,
            )
            .unwrap(),
        ];
        let jury = MatrixJury::new(workers).unwrap();
        let prior = CategoricalPrior::new(vec![0.2, 0.5, 0.3]).unwrap();
        let exact = exact_multiclass_bv_jq(&jury, &prior).unwrap();
        let approx =
            approx_multiclass_bv_jq(&jury, &prior, MultiClassBucketConfig::default()).unwrap();
        assert!(
            (exact - approx).abs() < 5e-3,
            "exact {exact} vs approx {approx}"
        );
    }

    #[test]
    fn approximation_scales_beyond_enumeration() {
        // 30 workers over 3 labels would be 3^30 ≈ 2·10^14 votings for the
        // exact method; the tuple DP handles it easily.
        let qualities: Vec<f64> = (0..30).map(|i| 0.55 + 0.01 * (i % 20) as f64).collect();
        let jury = MatrixJury::from_qualities(&qualities, 3).unwrap();
        let prior = CategoricalPrior::uniform(3).unwrap();
        let approx =
            approx_multiclass_bv_jq(&jury, &prior, MultiClassBucketConfig { num_buckets: 100 })
                .unwrap();
        assert!(approx > 0.95, "a 30-strong jury should be strong: {approx}");
        assert!(approx <= 1.0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let jury = MatrixJury::from_qualities(&[0.7, 0.7], 3).unwrap();
        let prior = CategoricalPrior::uniform(2).unwrap();
        assert!(exact_multiclass_bv_jq(&jury, &prior).is_err());
        assert!(approx_multiclass_bv_jq(&jury, &prior, MultiClassBucketConfig::default()).is_err());
        assert!(exact_multiclass_jq(&jury, &PluralityVoting::new(), &prior).is_err());
    }

    #[test]
    fn prior_certainty_gives_perfect_jq() {
        let jury = MatrixJury::from_qualities(&[0.6, 0.6], 3).unwrap();
        let prior = CategoricalPrior::new(vec![1.0, 0.0, 0.0]).unwrap();
        let exact = exact_multiclass_bv_jq(&jury, &prior).unwrap();
        assert!((exact - 1.0).abs() < 1e-9);
        let approx =
            approx_multiclass_bv_jq(&jury, &prior, MultiClassBucketConfig::default()).unwrap();
        assert!((approx - 1.0).abs() < 1e-6);
    }
}
