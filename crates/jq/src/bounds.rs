//! Approximation error bounds for the bucket-based JQ estimator
//! (Section 4.4, Equation 8).
//!
//! With bucket size `δ = upper / numBuckets` the additive error of
//! Algorithm 1 satisfies `JQ − ĴQ < e^{n·δ/4} − 1`. Setting
//! `numBuckets = d·n` makes the exponent `upper / (4d)`, independent of the
//! jury size; since `φ(0.99) < 5`, choosing `d ≥ 200` bounds the error by
//! `e^{5/800} − 1 ≈ 0.627 % < 1 %`.

/// The log-odds cap `φ(0.99) < 5` used in the paper's bound derivation.
pub const LOG_ODDS_CAP: f64 = 5.0;

/// The per-worker bucket multiplier `d ≥ 200` recommended by the paper for a
/// sub-1 % additive error.
pub const PAPER_RECOMMENDED_MULTIPLIER: usize = 200;

/// The additive error bound `e^{n·δ/4} − 1` for a jury of size `n` and bucket
/// size `δ` (Equation 8).
pub fn error_bound(jury_size: usize, bucket_size: f64) -> f64 {
    if jury_size == 0 || bucket_size <= 0.0 {
        return 0.0;
    }
    (jury_size as f64 * bucket_size / 4.0).exp() - 1.0
}

/// The error bound when `numBuckets = d · n`, expressed in terms of the
/// maximum log-odds `upper`: `e^{upper / (4d)} − 1`, independent of `n`.
pub fn error_bound_per_worker(upper: f64, multiplier: usize) -> f64 {
    if multiplier == 0 {
        return f64::INFINITY;
    }
    (upper.max(0.0) / (4.0 * multiplier as f64)).exp() - 1.0
}

/// The smallest per-worker multiplier `d` such that the error bound (with the
/// conservative `upper = 5` cap) stays below `target_error`.
pub fn recommended_multiplier(target_error: f64) -> usize {
    assert!(target_error > 0.0, "target error must be positive");
    // e^{5/(4d)} − 1 ≤ target  ⇔  d ≥ 5 / (4 ln(1 + target)).
    (LOG_ODDS_CAP / (4.0 * (1.0 + target_error).ln())).ceil() as usize
}

/// The smallest total bucket count for a jury of size `n` achieving the
/// target error, assuming the conservative `upper = 5` cap.
pub fn recommended_buckets(jury_size: usize, target_error: f64) -> usize {
    recommended_multiplier(target_error) * jury_size.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        // d = 200 with upper < 5 gives a bound below 0.627 % < 1 %.
        let bound = error_bound_per_worker(LOG_ODDS_CAP, PAPER_RECOMMENDED_MULTIPLIER);
        assert!(bound < 0.00628, "bound {bound}");
        assert!(bound > 0.006);
        assert!(bound < 0.01);
    }

    #[test]
    fn bound_grows_with_bucket_size_and_jury_size() {
        assert!(error_bound(10, 0.01) < error_bound(10, 0.02));
        assert!(error_bound(10, 0.01) < error_bound(20, 0.01));
        assert_eq!(error_bound(0, 0.5), 0.0);
        assert_eq!(error_bound(10, 0.0), 0.0);
    }

    #[test]
    fn per_worker_bound_is_jury_size_free() {
        // n·δ = n·(upper / (d·n)) = upper/d, so the two formulations agree.
        let upper = 3.2;
        let d = 50;
        for n in [5usize, 20, 200] {
            let delta = upper / (d * n) as f64;
            let a = error_bound(n, delta);
            let b = error_bound_per_worker(upper, d);
            assert!((a - b).abs() < 1e-12, "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn recommended_multiplier_hits_the_target() {
        let d = recommended_multiplier(0.01);
        assert!(error_bound_per_worker(LOG_ODDS_CAP, d) <= 0.01);
        // One less multiplier must violate the target (minimality).
        if d > 1 {
            assert!(error_bound_per_worker(LOG_ODDS_CAP, d - 1) > 0.01);
        }
        // The paper's d = 200 is comfortably enough for 1 %.
        assert!(d <= PAPER_RECOMMENDED_MULTIPLIER);
    }

    #[test]
    fn recommended_buckets_scales_with_jury_size() {
        let per = recommended_multiplier(0.005);
        assert_eq!(recommended_buckets(10, 0.005), per * 10);
        assert_eq!(recommended_buckets(0, 0.005), per);
    }

    #[test]
    fn zero_multiplier_is_unbounded() {
        assert!(error_bound_per_worker(5.0, 0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_target_rejected() {
        let _ = recommended_multiplier(0.0);
    }
}
