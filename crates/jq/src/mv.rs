//! Exact Jury Quality for Majority Voting in polynomial time.
//!
//! The paper notes that Cao et al. \[7\] compute `JQ(J, MV, 0.5)` in
//! `O(n log n)`; the baseline system (MVJS) reproduced in `jury-selection`
//! needs the same quantity, for arbitrary priors. We use an `O(n²)`
//! Poisson-binomial dynamic program over the number of `No` votes, which is
//! exact and more than fast enough for the pool sizes of the experiments
//! (`N ≤ 500`).

use jury_model::{Jury, ModelResult, Prior};

/// The distribution of the number of `No` votes cast by the jury,
/// conditioned on the true answer being `No` (`truth_is_no = true`) or `Yes`.
///
/// Entry `k` of the returned vector is `Pr(#No votes = k | t)`. Worker `i`
/// votes `No` with probability `q_i` when the truth is `No` and `1 − q_i`
/// when the truth is `Yes`.
pub fn no_vote_distribution(jury: &Jury, truth_is_no: bool) -> Vec<f64> {
    let n = jury.size();
    let mut dist = vec![0.0; n + 1];
    dist[0] = 1.0;
    for (i, worker) in jury.workers().iter().enumerate() {
        let p_no = if truth_is_no {
            worker.quality()
        } else {
            1.0 - worker.quality()
        };
        // Walk backwards so each worker is counted once.
        for k in (0..=i + 1).rev() {
            let stay = if k <= i { dist[k] * (1.0 - p_no) } else { 0.0 };
            let step = if k > 0 { dist[k - 1] * p_no } else { 0.0 };
            dist[k] = stay + step;
        }
    }
    dist
}

/// Exact `JQ(J, MV, α)` via the Poisson-binomial dynamic program.
///
/// MV answers `No` iff the number of `No` votes is at least
/// `⌈(n+1)/2⌉` (Example 1 of the paper), so
///
/// * given `t = No`, MV is correct iff `#No ≥ ⌈(n+1)/2⌉`;
/// * given `t = Yes`, MV is correct iff `#No < ⌈(n+1)/2⌉`.
pub fn mv_jq(jury: &Jury, prior: Prior) -> ModelResult<f64> {
    let n = jury.size();
    let threshold = n / 2 + 1; // ⌈(n+1)/2⌉ for both parities
    let alpha = prior.alpha();

    let dist_no = no_vote_distribution(jury, true);
    let correct_given_no: f64 = dist_no.iter().skip(threshold).sum();

    let dist_yes = no_vote_distribution(jury, false);
    let correct_given_yes: f64 = dist_yes.iter().take(threshold).sum();

    Ok(alpha * correct_given_no + (1.0 - alpha) * correct_given_yes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_jq;
    use jury_voting::MajorityVoting;

    #[test]
    fn distribution_sums_to_one() {
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.7, 0.55]).unwrap();
        for truth_is_no in [true, false] {
            let dist = no_vote_distribution(&jury, truth_is_no);
            assert_eq!(dist.len(), 5);
            let total: f64 = dist.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(dist.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn distribution_of_single_worker() {
        let jury = Jury::from_qualities(&[0.8]).unwrap();
        let dist = no_vote_distribution(&jury, true);
        assert!((dist[0] - 0.2).abs() < 1e-12);
        assert!((dist[1] - 0.8).abs() < 1e-12);
        let dist = no_vote_distribution(&jury, false);
        assert!((dist[0] - 0.8).abs() < 1e-12);
        assert!((dist[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn matches_example_2() {
        // JQ(MV) = 79.2 % for qualities 0.9, 0.6, 0.6 under a uniform prior.
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let jq = mv_jq(&jury, Prior::uniform()).unwrap();
        assert!((jq - 0.792).abs() < 1e-12, "got {jq}");
    }

    #[test]
    fn matches_introduction_example() {
        // {B, E, F} with qualities 0.7, 0.6, 0.6: JQ(MV) = 69.6 %.
        let jury = Jury::from_qualities(&[0.7, 0.6, 0.6]).unwrap();
        let jq = mv_jq(&jury, Prior::uniform()).unwrap();
        assert!((jq - 0.696).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_enumeration_for_all_small_juries() {
        let cases: Vec<Vec<f64>> = vec![
            vec![0.7],
            vec![0.9, 0.55],
            vec![0.65, 0.65, 0.8],
            vec![0.5, 0.6, 0.7, 0.8],
            vec![0.95, 0.51, 0.62, 0.73, 0.84],
            vec![0.6, 0.6, 0.6, 0.6, 0.6, 0.6],
        ];
        for qualities in cases {
            let jury = Jury::from_qualities(&qualities).unwrap();
            for alpha in [0.0, 0.3, 0.5, 0.7, 1.0] {
                let prior = Prior::new(alpha).unwrap();
                let dp = mv_jq(&jury, prior).unwrap();
                let brute = exact_jq(&jury, &MajorityVoting::new(), prior).unwrap();
                assert!(
                    (dp - brute).abs() < 1e-10,
                    "DP {dp} vs enumeration {brute} for {qualities:?}, alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn even_jury_tie_break_matches_strategy() {
        // Even-sized juries exercise MV's asymmetric tie-break.
        let jury = Jury::from_qualities(&[0.8, 0.7, 0.6, 0.9]).unwrap();
        let dp = mv_jq(&jury, Prior::new(0.4).unwrap()).unwrap();
        let brute = exact_jq(&jury, &MajorityVoting::new(), Prior::new(0.4).unwrap()).unwrap();
        assert!((dp - brute).abs() < 1e-12);
    }

    #[test]
    fn empty_jury_follows_the_tie_break() {
        // With no votes MV answers Yes, so JQ = 1 − α.
        let jury = Jury::empty();
        for alpha in [0.0, 0.5, 1.0] {
            let jq = mv_jq(&jury, Prior::new(alpha).unwrap()).unwrap();
            assert!((jq - (1.0 - alpha)).abs() < 1e-12);
        }
    }

    #[test]
    fn identical_workers_majority_amplifies_quality() {
        // Condorcet jury theorem sanity check: many identical workers with
        // q > 0.5 push the MV quality towards 1.
        let small = Jury::from_qualities(&[0.6; 3]).unwrap();
        let large = Jury::from_qualities(&[0.6; 31]).unwrap();
        let jq_small = mv_jq(&small, Prior::uniform()).unwrap();
        let jq_large = mv_jq(&large, Prior::uniform()).unwrap();
        assert!(jq_small > 0.6);
        assert!(jq_large > jq_small);
        assert!(jq_large > 0.85);
    }

    #[test]
    fn scales_to_large_juries() {
        let qualities: Vec<f64> = (0..401).map(|i| 0.55 + 0.4 * (i as f64 / 400.0)).collect();
        let jury = Jury::from_qualities(&qualities).unwrap();
        let jq = mv_jq(&jury, Prior::uniform()).unwrap();
        assert!(jq > 0.99 && jq <= 1.0 + 1e-12);
    }
}
