//! Pruning techniques for the bucket-based JQ approximation (Algorithm 2).
//!
//! During the iterative expansion of the `(key, prob)` map, a partial key can
//! already be decided: if the key is positive and even subtracting every
//! remaining worker's bucket cannot make it non-positive, the whole subtree
//! contributes its probability mass to the estimate; symmetrically, if the
//! key is negative and adding every remaining bucket cannot make it
//! non-negative, the subtree contributes nothing. The workers are sorted by
//! decreasing bucket so that large weights are fixed first, which makes these
//! cuts fire as early as possible.

/// Suffix sums of the (already sorted, descending) bucket array:
/// `aggregate[i] = b[i] + b[i+1] + ... + b[n-1]`, i.e. the maximum absolute
/// amount the key can still change by once workers `0..i` have been
/// processed — the `AggregateBucket` routine of Algorithm 2.
pub fn aggregate_buckets(buckets: &[i64]) -> Vec<i64> {
    let mut aggregate = vec![0i64; buckets.len()];
    let mut running = 0i64;
    for i in (0..buckets.len()).rev() {
        running += buckets[i];
        aggregate[i] = running;
    }
    aggregate
}

/// The decision of the `Prune` routine of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneDecision {
    /// The subtree cannot change sign: its entire probability mass counts
    /// towards the JQ estimate.
    TakeAll,
    /// The subtree cannot change sign: it contributes nothing.
    TakeNone,
    /// The sign is still undecided; keep expanding.
    Continue,
}

/// Decides whether the subtree rooted at `key`, with `remaining` total bucket
/// weight still unprocessed, can be pruned.
#[inline]
pub fn prune(key: i64, remaining: i64) -> PruneDecision {
    if key > 0 && key - remaining > 0 {
        PruneDecision::TakeAll
    } else if key < 0 && key + remaining < 0 {
        PruneDecision::TakeNone
    } else {
        PruneDecision::Continue
    }
}

/// Counters describing how much work pruning saved, reported by the
/// estimator for the Figure 9(d) experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Map entries resolved early as [`PruneDecision::TakeAll`].
    pub taken_all: u64,
    /// Map entries resolved early as [`PruneDecision::TakeNone`].
    pub taken_none: u64,
    /// Map entries that had to be expanded.
    pub expanded: u64,
}

impl PruneStats {
    /// Total number of map entries examined.
    pub fn total(&self) -> u64 {
        self.taken_all + self.taken_none + self.expanded
    }

    /// Fraction of examined entries that were pruned.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.taken_all + self.taken_none) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_is_suffix_sum() {
        assert_eq!(aggregate_buckets(&[7, 4, 3, 2]), vec![16, 9, 5, 2]);
        assert_eq!(aggregate_buckets(&[]), Vec::<i64>::new());
        assert_eq!(aggregate_buckets(&[5]), vec![5]);
    }

    #[test]
    fn prune_matches_the_paper_example() {
        // Section 4.3's example: b = [3, 7, 4, 3, 2] (sorted: [7,4,3,3,2]);
        // after fixing v1 = v2 = 0 with buckets 3 and 7 the key is 10 and the
        // remaining weight is 4 + 3 + 2 = 9 < 10, so the subtree is decided.
        assert_eq!(prune(10, 9), PruneDecision::TakeAll);
        assert_eq!(prune(-10, 9), PruneDecision::TakeNone);
        assert_eq!(prune(10, 10), PruneDecision::Continue);
        assert_eq!(prune(-10, 10), PruneDecision::Continue);
        assert_eq!(prune(0, 9), PruneDecision::Continue);
        assert_eq!(prune(3, 0), PruneDecision::TakeAll);
        assert_eq!(prune(-3, 0), PruneDecision::TakeNone);
        assert_eq!(prune(0, 0), PruneDecision::Continue);
    }

    #[test]
    fn prune_stats_fractions() {
        let stats = PruneStats {
            taken_all: 3,
            taken_none: 2,
            expanded: 5,
        };
        assert_eq!(stats.total(), 10);
        assert!((stats.pruned_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(PruneStats::default().pruned_fraction(), 0.0);
    }
}
