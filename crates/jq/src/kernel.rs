//! Low-level kernels and scratch-memory arena for the incremental JQ engines.
//!
//! This module is the "raw speed" layer under [`crate::incremental`] and
//! [`crate::multiclass_incremental`]: the dense convolution /
//! deconvolution passes that every solver step (annealing, greedy,
//! tabu, restarts, repair) ultimately spends its time in.
//!
//! Two things live here:
//!
//! * **Kernel pairs.** Every hot recurrence exists twice: a *vectorized*
//!   variant written as chunked, split-at-offset window passes over
//!   contiguous slices (branch-free inner loops that LLVM auto-vectorizes
//!   with SSE2 2-lane `f64` arithmetic), and the original *scalar
//!   reference* loop it was derived from. [`KernelMode`] selects between
//!   them at run time; the reference path is kept permanently so
//!   equivalence is testable on every target (the property suites pin
//!   `Vectorized == ScalarReference` to `1e-12`, and on non-FMA targets
//!   the binary-engine kernels are bit-identical by construction).
//!
//! * **[`JqScratch`]**, a buffer arena that owns retired `Vec<f64>`
//!   distributions (and member lists) so that building an incremental
//!   session, pushing/popping workers, and even the `pop_worker` rebuild
//!   fallback perform **zero heap allocations** after warm-up. Engines are
//!   built with `*_in` constructors that draw from an arena and return
//!   their buffers via `recycle` when dropped.
//!
//! # Why the vectorized forms are safe
//!
//! The scalar convolution scatters `dist[i]` into `scratch[i]` and
//! `scratch[i + 2b]`; the vectorized form runs the same arithmetic as two
//! slice passes (a scale pass and a shifted multiply-accumulate pass).
//! Because IEEE-754 addition of the same two finite terms is commutative
//! and every cell receives at most one term per pass, the result is
//! bit-identical on targets without fused multiply-add. Deconvolution is a
//! backward-substitution recurrence with dependency distance `2b`, so it
//! is solved in windows of width `2b` from the top: each window depends
//! only on already-solved cells and is itself a dependency-free slice
//! pass. See the "Kernel performance handbook" in `ARCHITECTURE.md` for
//! the full layout story.

use crate::incremental::Member;

/// Selects which implementation of the dense DP kernels an engine runs.
///
/// The vectorized kernels are the production path; the scalar loops are
/// retained as an executable specification. Both compute the same
/// recurrence — the property tests in `incremental.rs`, `bucket.rs`, and
/// `multiclass_incremental.rs` pin them together to `1e-12` across random
/// push/pop/swap sequences, including the forced deconvolution-fallback
/// path.
///
/// ```
/// use jury_jq::{IncrementalJqConfig, KernelMode};
///
/// let fast = IncrementalJqConfig::default(); // Vectorized is the default
/// assert_eq!(fast.kernel, KernelMode::Vectorized);
///
/// let reference = IncrementalJqConfig::default()
///     .with_kernel_mode(KernelMode::ScalarReference);
/// assert_eq!(reference.kernel, KernelMode::ScalarReference);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Chunked split-at-offset window passes over contiguous slices
    /// (auto-vectorizable; allocation-free given warmed buffers). The
    /// default.
    #[default]
    Vectorized,
    /// The original element-at-a-time loops, kept as the reference
    /// implementation the vectorized path is tested against.
    ScalarReference,
}

/// Upper bound on pooled buffers of each kind; beyond this, recycled
/// buffers are dropped instead of retained.
const MAX_POOLED: usize = 32;

/// A reusable scratch-memory arena for the incremental JQ engines.
///
/// The steady-state cost of the incremental hot path is dominated by the
/// `Vec<f64>` distribution buffers the engines work in. `JqScratch` keeps
/// retired buffers (cleared, capacity intact) so the next session build or
/// rebuild can reuse them instead of allocating:
///
/// * [`IncrementalJq::for_pool_in`](crate::IncrementalJq::for_pool_in) and
///   [`IncrementalMvJq::new_in`](crate::IncrementalMvJq::new_in) draw
///   their buffers from an arena;
/// * `recycle(self, &mut JqScratch)` on either engine returns them;
/// * the selection layer's session objects do this automatically on drop.
///
/// After one warm-up session at the largest grid a workload reaches,
/// subsequent sessions allocate nothing on push/pop/swap/value — enforced
/// by a counting-allocator test in `crates/selection/tests/zero_alloc.rs`.
///
/// ```
/// use jury_jq::JqScratch;
///
/// let mut arena = JqScratch::new();
///
/// // Buffers start empty; recycled buffers keep their capacity.
/// let mut buf = arena.take_buffer();
/// assert!(buf.is_empty());
/// buf.resize(1024, 0.0);
/// arena.recycle_buffer(buf);
/// assert_eq!(arena.buffers_held(), 1);
///
/// let warm = arena.take_buffer();
/// assert!(warm.is_empty());
/// assert!(warm.capacity() >= 1024); // no allocation needed to reuse it
/// ```
#[derive(Debug, Default)]
pub struct JqScratch {
    buffers: Vec<Vec<f64>>,
    members: Vec<Vec<Member>>,
}

impl JqScratch {
    /// Creates an empty arena. Buffers are pooled as engines recycle them.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared `f64` buffer from the pool, or a fresh empty one if
    /// the pool is dry. Recycled buffers keep their capacity, so a warm
    /// arena hands out allocation-free storage.
    ///
    /// The largest pooled buffer is handed out first: engines take buffers
    /// in descending order of expected size, so matching greedily by
    /// capacity keeps a warm arena allocation-free even when the pooled
    /// capacities differ.
    #[must_use]
    pub fn take_buffer(&mut self) -> Vec<f64> {
        let largest = self
            .buffers
            .iter()
            .enumerate()
            .max_by_key(|(_, buffer)| buffer.capacity())
            .map(|(index, _)| index);
        match largest {
            Some(index) => self.buffers.swap_remove(index),
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool. The buffer is cleared but its
    /// capacity is retained for the next [`take_buffer`](Self::take_buffer).
    pub fn recycle_buffer(&mut self, mut buffer: Vec<f64>) {
        if self.buffers.len() < MAX_POOLED {
            buffer.clear();
            self.buffers.push(buffer);
        }
    }

    /// Number of `f64` buffers currently held by the arena.
    #[must_use]
    pub fn buffers_held(&self) -> usize {
        self.buffers.len()
    }

    /// Total `f64` capacity parked in the arena across all pooled buffers.
    #[must_use]
    pub fn pooled_capacity(&self) -> usize {
        self.buffers.iter().map(Vec::capacity).sum()
    }

    /// Moves every pooled buffer of `other` into this arena (up to the
    /// pooling cap; overflow is dropped). This is the lane-retirement
    /// handoff of the parallel solvers: a worker thread warms a private
    /// arena for its hot loop, and when the lane finishes, its warm
    /// capacity is absorbed into the parent arena instead of being freed.
    pub fn absorb(&mut self, other: &mut JqScratch) {
        for buffer in other.buffers.drain(..) {
            self.recycle_buffer(buffer);
        }
        for members in other.members.drain(..) {
            self.recycle_members(members);
        }
    }

    pub(crate) fn take_members(&mut self) -> Vec<Member> {
        self.members.pop().unwrap_or_default()
    }

    pub(crate) fn recycle_members(&mut self, mut members: Vec<Member>) {
        if self.members.len() < MAX_POOLED {
            members.clear();
            self.members.push(members);
        }
    }
}

/// A poison-tolerant `Mutex<JqScratch>` for sharing one arena between the
/// sessions an objective hands out.
///
/// The selection objectives own one of these; every incremental session
/// they create borrows it, draws buffers at construction, and recycles
/// them on drop. `std::sync::Mutex` is used deliberately: locking it does
/// not allocate, so the arena itself never breaks the zero-alloc claim.
///
/// ```
/// use jury_jq::SharedJqScratch;
///
/// let shared = SharedJqScratch::new();
/// let buf = shared.lock().take_buffer();
/// shared.lock().recycle_buffer(buf);
/// assert_eq!(shared.lock().buffers_held(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SharedJqScratch {
    inner: std::sync::Mutex<JqScratch>,
}

impl SharedJqScratch {
    /// Creates a shared arena around an empty [`JqScratch`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the arena. A poisoned lock (a panic while holding it) is
    /// recovered rather than propagated — the arena holds only recyclable
    /// buffers, so there is no invariant a panic could have broken.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, JqScratch> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Absorbs another shared arena's pooled buffers into this one (see
    /// [`JqScratch::absorb`]). Used when a parallel lane retires and hands
    /// its warm per-thread arena back to the parent objective's arena.
    pub fn absorb(&self, other: &SharedJqScratch) {
        if std::ptr::eq(self, other) {
            return;
        }
        // Lock order is caller-fixed (parent absorbs lane); lanes are
        // joined before absorption, so no lock cycle is reachable.
        let mut target = self.lock();
        target.absorb(&mut other.lock());
    }
}

/// Fused multiply-add where the target has hardware FMA, plain
/// multiply-then-add otherwise.
///
/// `f64::mul_add` without hardware support lowers to a (slow, software)
/// libm call; worse, it would make the vectorized kernels round
/// differently from the scalar reference on exactly the targets where the
/// libm call also makes them slower. Gating on the `fma` target feature
/// gives contraction where it is free and bit-identical arithmetic where
/// it is not.
#[inline(always)]
pub(crate) fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        a * b + acc
    }
}

// ---------------------------------------------------------------------------
// Binary engine (IncrementalJq): spike convolution over the bucket grid
// ---------------------------------------------------------------------------

/// Vectorized convolution of `dist` with a worker spike pair
/// `{+b: quality, -b: 1 - quality}` (log-odds bucket `b = step`), writing
/// the grown distribution into `out`.
///
/// Layout: `dist[i]` is the probability of offset key `i - total`, so the
/// new distribution has length `dist.len() + 2 * step` and
/// `out[i] = dist[i] * (1 - q) + dist[i - 2b] * q`. The scalar loop
/// scatters each source cell to two destinations; here the same arithmetic
/// is two dependency-free slice passes (scale, then shifted
/// multiply-accumulate), which is what LLVM needs to emit packed SSE2.
pub(crate) fn convolve_spikes(dist: &[f64], out: &mut Vec<f64>, step: usize, quality: f64) {
    let width = 2 * step;
    out.clear();
    out.resize(dist.len() + width, 0.0);
    let one_minus = 1.0 - quality;
    // Scale pass: the "stay low" term lands at the source index.
    for (o, &p) in out[..dist.len()].iter_mut().zip(dist) {
        *o = p * one_minus;
    }
    // Accumulate pass: the "step up" term lands 2b slots higher.
    for (o, &p) in out[width..].iter_mut().zip(dist) {
        *o = fmadd(p, quality, *o);
    }
}

/// Scalar reference for [`convolve_spikes`]: the original scatter loop.
pub(crate) fn convolve_spikes_scalar(dist: &[f64], out: &mut Vec<f64>, step: usize, quality: f64) {
    let width = 2 * step;
    out.clear();
    out.resize(dist.len() + width, 0.0);
    let one_minus = 1.0 - quality;
    for (i, &p) in dist.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        out[i + width] += p * quality;
        out[i] += p * one_minus;
    }
}

/// Vectorized exact deconvolution: removes a worker spike pair from `new`,
/// writing the shrunk distribution into `out`. Returns `false` (engine
/// falls back to a rebuild) if the result is not a clean probability
/// vector within `tolerance`.
///
/// The recurrence `old[j] = (new[j + 2b] - (1-q) * old[j + 2b]) / q` has
/// dependency distance `2b`, so cells are solved top-down in windows of
/// width `2b`: the first window's dependencies fall off the top of the
/// array (provably zero), and each later window reads only the
/// already-solved suffix, exposed as a disjoint slice via
/// `split_at_mut`. Within a window the compute pass is dependency-free;
/// the clamp/sum pass then walks the window in reverse so the stability
/// guard accumulates in exactly the scalar reference's order.
pub(crate) fn deconvolve_spikes(
    new: &[f64],
    out: &mut Vec<f64>,
    step: usize,
    quality: f64,
    tolerance: f64,
) -> bool {
    let width = 2 * step;
    let old_len = new.len() - width;
    out.clear();
    out.resize(old_len, 0.0);
    let one_minus = 1.0 - quality;
    let mut sum = 0.0f64;
    let mut hi = old_len;
    let mut first = true;
    while hi > 0 {
        let lo = hi.saturating_sub(width);
        if first {
            // The dependency `old[j + 2b]` indexes past the end of the old
            // array for every j in the top window, so the term is zero.
            for (o, &n) in out[lo..hi].iter_mut().zip(&new[lo + width..hi + width]) {
                *o = n / quality;
            }
            first = false;
        } else {
            let (head, solved) = out.split_at_mut(hi);
            let window = &mut head[lo..];
            let above = &solved[lo + width - hi..width];
            for ((o, &n), &a) in window
                .iter_mut()
                .zip(&new[lo + width..hi + width])
                .zip(above)
            {
                *o = fmadd(-one_minus, a, n) / quality;
            }
        }
        // Clamp + stability sum, in the scalar loop's descending order.
        for o in out[lo..hi].iter_mut().rev() {
            let value = *o;
            if value < 0.0 {
                if value < -tolerance {
                    return false;
                }
                *o = 0.0;
            } else {
                sum += value;
            }
        }
        hi = lo;
    }
    (sum - 1.0).abs() <= tolerance
}

/// Scalar reference for [`deconvolve_spikes`]: the original descending
/// backward-substitution loop.
pub(crate) fn deconvolve_spikes_scalar(
    new: &[f64],
    out: &mut Vec<f64>,
    step: usize,
    quality: f64,
    tolerance: f64,
) -> bool {
    let width = 2 * step;
    let old_len = new.len() - width;
    out.clear();
    out.resize(old_len, 0.0);
    let one_minus = 1.0 - quality;
    let mut sum = 0.0f64;
    for j in (0..old_len).rev() {
        let above = if j + width < old_len {
            out[j + width]
        } else {
            0.0
        };
        let mut value = (new[j + width] - one_minus * above) / quality;
        if value < 0.0 {
            if value < -tolerance {
                return false;
            }
            value = 0.0;
        } else {
            sum += value;
        }
        out[j] = value;
    }
    (sum - 1.0).abs() <= tolerance
}

// ---------------------------------------------------------------------------
// MV engine (IncrementalMvJq): Poisson-binomial vote-count recurrences
// ---------------------------------------------------------------------------

/// Vectorized out-of-place Bernoulli convolution for the MV vote-count
/// DP: `out[k] = dist[k] * (1 - p) + dist[k - 1] * p`.
///
/// Same two-pass structure as [`convolve_spikes`] with shift 1; writing
/// into a scratch buffer (instead of the scalar in-place backward walk)
/// removes the loop-carried dependency and keeps the buffers swappable.
pub(crate) fn convolve_bernoulli_out(dist: &[f64], out: &mut Vec<f64>, p: f64) {
    let n = dist.len();
    out.clear();
    out.resize(n + 1, 0.0);
    let stay = 1.0 - p;
    for (o, &d) in out[..n].iter_mut().zip(dist) {
        *o = d * stay;
    }
    for (o, &d) in out[1..].iter_mut().zip(dist) {
        *o = fmadd(d, p, *o);
    }
}

/// Exact Bernoulli deconvolution into a caller-provided buffer: solves
/// `dist = old ⊛ Bernoulli(p)` for `old`, writing it into `out`. Returns
/// `false` if the division is numerically unstable (negative mass beyond
/// `tolerance`, or the result does not sum to 1).
///
/// The recurrence is an inherently sequential carry chain (dependency
/// distance 1), so there is no vectorized variant — both kernel modes run
/// this loop. It is solved from the numerically dominant end: forward
/// (dividing by `1 - p`) when `p <= 0.5`, backward (dividing by `p`)
/// otherwise. Replaces the old allocating form that returned a fresh
/// `Vec` on every pop.
pub(crate) fn deconvolve_bernoulli_into(
    dist: &[f64],
    p: f64,
    tolerance: f64,
    out: &mut Vec<f64>,
) -> bool {
    let new_len = dist.len();
    if new_len < 2 {
        return false;
    }
    let old_len = new_len - 1;
    out.clear();
    out.resize(old_len, 0.0);
    let tolerance = tolerance.max(1e-9);
    let mut sum = 0.0f64;
    if p <= 0.5 {
        let scale = 1.0 - p;
        let mut carry = 0.0f64;
        for k in 0..old_len {
            let mut value = (dist[k] - carry) / scale;
            if value < 0.0 {
                if value < -tolerance {
                    return false;
                }
                value = 0.0;
            }
            out[k] = value;
            sum += value;
            carry = p * value;
        }
    } else {
        let mut carry = 0.0f64;
        for k in (0..old_len).rev() {
            let mut value = (dist[k + 1] - carry) / p;
            if value < 0.0 {
                if value < -tolerance {
                    return false;
                }
                value = 0.0;
            }
            out[k] = value;
            sum += value;
            carry = (1.0 - p) * value;
        }
    }
    (sum - 1.0).abs() <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_dist(len: usize, seed: u64) -> Vec<f64> {
        // Tiny deterministic LCG; mass normalised to 1.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut dist: Vec<f64> = (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12)
            })
            .collect();
        let total: f64 = dist.iter().sum();
        for d in &mut dist {
            *d /= total;
        }
        dist
    }

    #[test]
    fn convolve_matches_scalar_reference_exactly() {
        for seed in 0..8u64 {
            for &step in &[1usize, 2, 3, 7, 19] {
                let dist = random_dist(5 + (seed as usize) * 13, seed);
                let mut fast = Vec::new();
                let mut slow = Vec::new();
                convolve_spikes(&dist, &mut fast, step, 0.73);
                convolve_spikes_scalar(&dist, &mut slow, step, 0.73);
                assert_eq!(fast.len(), slow.len());
                for (a, b) in fast.iter().zip(&slow) {
                    assert!((a - b).abs() <= 1e-15, "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn deconvolve_inverts_convolve_in_both_modes() {
        for seed in 0..8u64 {
            for &step in &[1usize, 3, 11] {
                let old = random_dist(4 + (seed as usize) * 9, seed);
                let mut grown = Vec::new();
                convolve_spikes(&old, &mut grown, step, 0.81);
                let mut fast = Vec::new();
                let mut slow = Vec::new();
                assert!(deconvolve_spikes(&grown, &mut fast, step, 0.81, 1e-9));
                assert!(deconvolve_spikes_scalar(
                    &grown, &mut slow, step, 0.81, 1e-9
                ));
                for ((a, b), &want) in fast.iter().zip(&slow).zip(&old) {
                    assert!((a - b).abs() <= 1e-12, "modes diverged: {a} vs {b}");
                    assert!((a - want).abs() <= 1e-9, "bad inverse: {a} vs {want}");
                }
            }
        }
    }

    #[test]
    fn deconvolve_rejects_a_distribution_it_cannot_have_produced() {
        // A point mass at the bottom cannot arise from convolving any old
        // distribution with a 0.7-spike pair; both modes must refuse.
        let mut bad = vec![0.0f64; 9];
        bad[0] = 1.0;
        let mut out = Vec::new();
        assert!(!deconvolve_spikes(&bad, &mut out, 2, 0.7, 1e-9));
        assert!(!deconvolve_spikes_scalar(&bad, &mut out, 2, 0.7, 1e-9));
    }

    #[test]
    fn bernoulli_kernels_roundtrip() {
        for seed in 0..8u64 {
            let old = random_dist(6 + (seed as usize) * 5, seed);
            for &p in &[0.3f64, 0.5, 0.55, 0.9] {
                let mut grown = Vec::new();
                convolve_bernoulli_out(&old, &mut grown, p);
                // Matches the in-place scalar recurrence.
                let mut scalar = old.clone();
                scalar.push(0.0);
                for k in (0..scalar.len()).rev() {
                    let stay = if k < old.len() {
                        old[k] * (1.0 - p)
                    } else {
                        0.0
                    };
                    let step = if k > 0 { old[k - 1] * p } else { 0.0 };
                    scalar[k] = stay + step;
                }
                for (a, b) in grown.iter().zip(&scalar) {
                    assert!((a - b).abs() <= 1e-15);
                }
                let mut back = Vec::new();
                assert!(deconvolve_bernoulli_into(&grown, p, 1e-9, &mut back));
                for (a, &want) in back.iter().zip(&old) {
                    assert!((a - want).abs() <= 1e-9);
                }
            }
        }
    }

    #[test]
    fn scratch_arena_recycles_capacity() {
        let mut arena = JqScratch::new();
        let mut buf = arena.take_buffer();
        buf.resize(4096, 0.0);
        let cap = buf.capacity();
        arena.recycle_buffer(buf);
        assert_eq!(arena.buffers_held(), 1);
        assert!(arena.pooled_capacity() >= 4096);
        let warm = arena.take_buffer();
        assert!(warm.is_empty());
        assert_eq!(warm.capacity(), cap);
        assert_eq!(arena.buffers_held(), 0);
    }

    #[test]
    fn scratch_arena_is_bounded() {
        let mut arena = JqScratch::new();
        for _ in 0..(MAX_POOLED + 10) {
            arena.recycle_buffer(vec![0.0; 8]);
        }
        assert_eq!(arena.buffers_held(), MAX_POOLED);
    }
}
