//! Typed errors for the Jury Quality back-ends.
//!
//! Historically the exponential back-ends guarded their size limits with
//! `assert!`, which turned an oversized request into a process abort. The
//! service layer introduced in the API redesign promises that nothing on a
//! request path panics, so every JQ entry point now reports precondition
//! violations as values of [`JqError`] instead.

use std::fmt;

use jury_model::ModelError;

/// Why a Jury Quality computation could not be performed.
#[derive(Debug, Clone, PartialEq)]
pub enum JqError {
    /// An exact enumeration was asked to enumerate more votings than the
    /// back-end's limit allows (`2^n` for binary tasks).
    JuryTooLarge {
        /// Number of jurors in the offending jury.
        size: usize,
        /// Largest jury the exact back-end accepts.
        max: usize,
    },
    /// A multi-class exact enumeration would visit more than the supported
    /// number of votings (`ℓ^n`).
    EnumerationTooLarge {
        /// Number of votings the request would enumerate.
        votings: u64,
        /// Largest supported voting-space size.
        max: u64,
    },
    /// An incremental engine was asked to remove a worker that is not part
    /// of its current jury state.
    NotAMember {
        /// The quality of the worker that was not found.
        quality: f64,
    },
    /// An id-tracking incremental engine was asked to remove a worker whose
    /// id is not part of its current jury state.
    NotAJuryMember {
        /// The id of the worker that was not found.
        id: jury_model::WorkerId,
    },
    /// A dense incremental DP state would exceed its configured cell
    /// budget (the multi-class engine's guard against exponential boxes).
    StateTooLarge {
        /// Cells the state would need.
        cells: u64,
        /// The configured cell budget.
        max: u64,
    },
    /// A lower-level model invariant was violated (invalid votes, labels,
    /// priors, ...).
    Model(ModelError),
}

impl fmt::Display for JqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JqError::JuryTooLarge { size, max } => write!(
                f,
                "exact JQ enumeration is limited to {max} workers (got {size})"
            ),
            JqError::EnumerationTooLarge { votings, max } => write!(
                f,
                "exact multi-class enumeration of {votings} votings exceeds the limit of {max}"
            ),
            JqError::NotAMember { quality } => write!(
                f,
                "no worker with quality {quality} is part of the incremental jury state"
            ),
            JqError::NotAJuryMember { id } => write!(
                f,
                "no worker with id {id} is part of the incremental jury state"
            ),
            JqError::StateTooLarge { cells, max } => write!(
                f,
                "a dense incremental DP state of {cells} cells exceeds the budget of {max}"
            ),
            JqError::Model(err) => write!(f, "model error: {err}"),
        }
    }
}

impl std::error::Error for JqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JqError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ModelError> for JqError {
    fn from(err: ModelError) -> Self {
        JqError::Model(err)
    }
}

/// Convenience result alias for JQ computations.
pub type JqResult<T> = Result<T, JqError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(JqError, &str)> = vec![
            (JqError::JuryTooLarge { size: 30, max: 20 }, "limited"),
            (
                JqError::EnumerationTooLarge {
                    votings: 1 << 30,
                    max: 1 << 22,
                },
                "multi-class",
            ),
            (JqError::NotAMember { quality: 0.7 }, "incremental"),
            (
                JqError::Model(ModelError::Empty { what: "jury" }),
                "model error",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should mention {needle}");
        }
    }

    #[test]
    fn model_errors_convert_and_expose_a_source() {
        use std::error::Error;
        let err: JqError = ModelError::Empty { what: "pool" }.into();
        assert!(matches!(err, JqError::Model(_)));
        assert!(err.source().is_some());
        assert!(JqError::JuryTooLarge { size: 30, max: 20 }
            .source()
            .is_none());
    }
}
