//! Incremental Jury Quality evaluation — the solvers' hot path.
//!
//! The JSP searches (`jury-selection`) evaluate `JQ(J, BV, α)` thousands of
//! times on *neighbouring* juries: greedy search scores pool-many
//! single-worker extensions per round, and each simulated-annealing step
//! mutates exactly one member. Rebuilding the whole Algorithm 1 dynamic
//! program from scratch for every candidate — `O(n · numBuckets)` per
//! evaluation — wastes almost all of that work, the same bottleneck that
//! quality-driven worker selection systems hit at scale.
//!
//! [`IncrementalJq`] keeps the *dense* bucket distribution of
//! [`crate::bucket`] alive between evaluations:
//!
//! * [`IncrementalJq::push_worker`] convolves one worker's two-spike
//!   distribution in — `O(buckets)`;
//! * [`IncrementalJq::pop_worker`] removes one by **exact deconvolution** —
//!   also `O(buckets)`. The backward recurrence divides by the effective
//!   quality `q ≥ ½`, so it is a numerical contraction; a stability check
//!   (no significant negative mass, total mass ≈ 1) guards it, falling back
//!   to a from-scratch rebuild when floating-point drift accumulates;
//! * [`IncrementalJq::swap_worker`] composes the two, so an annealing
//!   neighbour costs `O(buckets)` instead of `O(n · buckets)`.
//!
//! The engine works on a **fixed bucket grid** chosen once per candidate
//! pool ([`IncrementalJq::for_pool`]), unlike the scratch estimator whose
//! grid is re-derived per jury; with the same grid the two produce identical
//! results (see the property tests at the bottom of this module).
//!
//! [`IncrementalMvJq`] is the majority-voting counterpart: it maintains the
//! Poisson-binomial vote-count distributions of [`crate::mv`] under the same
//! push/pop/swap contract, which keeps the MVJS baseline search incremental
//! too.
//!
//! ```
//! use jury_jq::{IncrementalJq, IncrementalJqConfig};
//! use jury_model::{paper_example_pool, Prior};
//!
//! let pool = paper_example_pool();
//! let mut engine =
//!     IncrementalJq::for_pool(&pool, Prior::uniform(), IncrementalJqConfig::default());
//!
//! // Build the {B, C, G} jury one push at a time.
//! for id in [1u32, 2, 6] {
//!     engine.push_worker(pool.get(jury_model::WorkerId(id)).unwrap());
//! }
//! assert!((engine.jq() - 0.845).abs() < 1e-3);
//!
//! // A neighbour jury costs O(buckets): swap C out for A, then undo it.
//! let c = pool.get(jury_model::WorkerId(2)).unwrap().clone();
//! let a = pool.get(jury_model::WorkerId(0)).unwrap().clone();
//! engine.swap_worker(&c, &a).unwrap();
//! let neighbour = engine.jq();
//! engine.swap_worker(&a, &c).unwrap();
//! assert!((engine.jq() - 0.845).abs() < 1e-3);
//! assert!(neighbour < 0.87);
//! ```

use jury_model::{log_odds, Prior, Worker, WorkerPool};

use crate::bucket::{bucket_index, BucketCount};
use crate::error::{JqError, JqResult};
use crate::kernel::{self, JqScratch, KernelMode};

/// Configuration of the incremental JQ engine's bucket grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalJqConfig {
    /// Grid resolution, resolved against the *pool* size (the grid must stay
    /// fixed while juries mutate, so it cannot follow the jury size the way
    /// the scratch estimator's does).
    pub buckets: BucketCount,
    /// Upper bound on the total bucket weight `Σ b_i` a full-pool jury may
    /// reach; the per-worker bucket count is capped so the dense array never
    /// outgrows this many slots per side.
    pub max_total_weight: i64,
    /// Deconvolution stability tolerance: negative mass below `-tolerance`
    /// or total-mass drift above `tolerance` triggers a from-scratch
    /// rebuild. `0.0` forces a rebuild on effectively every pop (useful for
    /// exercising the fallback).
    pub stability_tolerance: f64,
    /// Which implementation of the convolution/deconvolution kernels the
    /// engine runs: the vectorized production path or the scalar reference
    /// loops (see [`KernelMode`]).
    pub kernel: KernelMode,
}

impl Default for IncrementalJqConfig {
    fn default() -> Self {
        IncrementalJqConfig {
            buckets: BucketCount::PerWorker(crate::bounds::PAPER_RECOMMENDED_MULTIPLIER),
            max_total_weight: 1 << 21,
            stability_tolerance: 1e-10,
            kernel: KernelMode::default(),
        }
    }
}

impl IncrementalJqConfig {
    /// Sets the grid resolution.
    pub fn with_buckets(mut self, buckets: BucketCount) -> Self {
        self.buckets = buckets;
        self
    }

    /// Sets the stability tolerance of the deconvolution guard.
    pub fn with_stability_tolerance(mut self, tolerance: f64) -> Self {
        self.stability_tolerance = tolerance.max(0.0);
        self
    }

    /// Selects the kernel implementation (vectorized vs scalar reference).
    pub fn with_kernel_mode(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// The number of buckets per maximal log-odds weight for a pool of `n`
    /// candidates, after applying the total-weight cap.
    pub fn resolve_buckets(&self, pool_size: usize) -> usize {
        let uncapped = self.buckets.resolve(pool_size);
        let cap = (self.max_total_weight / pool_size.max(1) as i64).max(1) as usize;
        uncapped.min(cap).max(1)
    }
}

/// Counters describing the work an incremental engine performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Workers convolved in.
    pub pushes: u64,
    /// Workers deconvolved out (including those resolved by rebuild).
    pub pops: u64,
    /// Swap operations served.
    pub swaps: u64,
    /// Times the stability guard rejected a deconvolution and the state was
    /// rebuilt from scratch instead.
    pub rebuilds: u64,
}

/// One jury member as tracked by the incremental state: its (effective)
/// quality and its fixed bucket index on the engine's grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Member {
    bucket: i64,
    quality: f64,
}

/// Stateful, incrementally-updatable estimator of `JQ(J, BV, α)` on a fixed
/// bucket grid (see the [module docs](crate::incremental) for the contract
/// and the solver-facing walkthrough).
///
/// ```
/// use jury_jq::IncrementalJq;
///
/// // An explicit grid: qualities quantize to log-odds multiples of 0.05.
/// let mut engine = IncrementalJq::new(0.05);
/// engine.push_quality(0.9);
/// engine.push_quality(0.6);
/// engine.push_quality(0.6);
/// assert!((engine.jq() - 0.9).abs() < 5e-3); // Example 3 of the paper
///
/// // Popping a worker by exact deconvolution restores the smaller jury.
/// engine.pop_quality(0.9).unwrap();
/// let two_sixties = engine.jq();
/// assert!((two_sixties - 0.6).abs() < 5e-3);
/// assert!((engine.jq() - engine.from_scratch_jq()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalJq {
    bucket_size: f64,
    tolerance: f64,
    members: Vec<Member>,
    /// Dense probability mass over keys `[-total, total]`, offset-indexed:
    /// slot `total + key` holds the mass of `key`.
    dist: Vec<f64>,
    /// Double-buffer for convolution/deconvolution targets, swapped with
    /// `dist` on success so the hot path never allocates once the buffers
    /// have grown to the working size.
    scratch: Vec<f64>,
    total: i64,
    kernel: KernelMode,
    stats: IncrementalStats,
}

impl IncrementalJq {
    /// Creates an empty engine on an explicit grid of width `bucket_size`
    /// (`0.0` collapses every worker to bucket 0) with the default stability
    /// tolerance and a uniform prior.
    pub fn new(bucket_size: f64) -> Self {
        let mut arena = JqScratch::new();
        Self::new_in(bucket_size, &mut arena)
    }

    /// [`Self::new`], drawing the engine's buffers from `arena` instead of
    /// allocating. With a warm arena (one that previously received this
    /// grid's buffers via [`Self::recycle`]) construction is allocation-free.
    pub fn new_in(bucket_size: f64, arena: &mut JqScratch) -> Self {
        let mut dist = arena.take_buffer();
        dist.push(1.0);
        IncrementalJq {
            bucket_size: bucket_size.max(0.0),
            tolerance: IncrementalJqConfig::default().stability_tolerance,
            members: arena.take_members(),
            dist,
            scratch: arena.take_buffer(),
            total: 0,
            kernel: KernelMode::default(),
            stats: IncrementalStats::default(),
        }
    }

    /// Creates an engine whose grid is sized for juries drawn from `pool`,
    /// with the prior already folded in as the Theorem 3 pseudo-worker.
    ///
    /// The grid width is the pool's largest effective log-odds weight (or
    /// the prior's, if larger) divided by the resolved bucket count, so
    /// every feasible jury of the pool quantizes onto the same grid.
    pub fn for_pool(pool: &WorkerPool, prior: Prior, config: IncrementalJqConfig) -> Self {
        let mut arena = JqScratch::new();
        Self::for_pool_in(pool, prior, config, &mut arena)
    }

    /// [`Self::for_pool`], drawing the engine's buffers from `arena` instead
    /// of allocating. The selection layer keeps one arena per objective and
    /// recycles session engines into it, so only the first session on a
    /// given grid pays the allocations.
    pub fn for_pool_in(
        pool: &WorkerPool,
        prior: Prior,
        config: IncrementalJqConfig,
        arena: &mut JqScratch,
    ) -> Self {
        let prior_quality = prior.alpha().max(1.0 - prior.alpha());
        let mut phi_max = if prior.is_uniform() {
            0.0f64
        } else {
            log_odds(prior_quality)
        };
        for worker in pool.iter() {
            phi_max = phi_max.max(log_odds(worker.effective_quality()));
        }
        let buckets = config.resolve_buckets(pool.len()) as f64;
        let bucket_size = if phi_max > 0.0 {
            phi_max / buckets
        } else {
            0.0
        };
        let mut engine = IncrementalJq::new_in(bucket_size, arena);
        engine.tolerance = config.stability_tolerance;
        engine.kernel = config.kernel;
        if !prior.is_uniform() {
            engine.push_quality(prior.alpha());
        }
        engine
    }

    /// Returns the engine's buffers to `arena`, consuming it. The next
    /// engine built from the arena (via [`Self::new_in`] /
    /// [`Self::for_pool_in`]) reuses their capacity instead of allocating.
    pub fn recycle(self, arena: &mut JqScratch) {
        arena.recycle_buffer(self.dist);
        arena.recycle_buffer(self.scratch);
        arena.recycle_members(self.members);
    }

    /// Overrides the deconvolution stability tolerance.
    pub fn with_stability_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance.max(0.0);
        self
    }

    /// Overrides the kernel implementation (vectorized vs scalar reference).
    pub fn with_kernel_mode(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// The grid width `δ` in effect.
    pub fn bucket_size(&self) -> f64 {
        self.bucket_size
    }

    /// Number of workers currently folded into the state (including the
    /// prior pseudo-worker, when one was folded at construction).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no worker has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Work counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Convolves a worker's two-spike distribution into the state:
    /// `O(buckets)`.
    pub fn push_worker(&mut self, worker: &Worker) {
        self.push_quality(worker.quality());
    }

    /// [`Self::push_worker`] by raw quality. Qualities below ½ are
    /// reinterpreted as their effective quality `max(q, 1 − q)`
    /// (Section 3.3), exactly like the scratch estimator.
    pub fn push_quality(&mut self, quality: f64) {
        let q = quality.max(1.0 - quality);
        let b = bucket_index(log_odds(q), self.bucket_size);
        self.convolve_in(b, q);
        self.members.push(Member {
            bucket: b,
            quality: q,
        });
        self.stats.pushes += 1;
    }

    /// Removes a worker by exact deconvolution: `O(buckets)`, with a
    /// from-scratch rebuild fallback when the stability guard fires.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAMember`] when no tracked member has the
    /// worker's effective quality; the state is left untouched in that case.
    pub fn pop_worker(&mut self, worker: &Worker) -> JqResult<()> {
        self.pop_quality(worker.quality())
    }

    /// [`Self::pop_worker`] by raw quality.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAMember`] when the quality was never pushed.
    pub fn pop_quality(&mut self, quality: f64) -> JqResult<()> {
        let q = quality.max(1.0 - quality);
        let position = self
            .members
            .iter()
            .rposition(|m| m.quality.to_bits() == q.to_bits())
            .ok_or(JqError::NotAMember { quality })?;
        let member = self.members.swap_remove(position);
        self.stats.pops += 1;
        if member.bucket == 0 {
            // A zero-bucket factor is the identity convolution regardless of
            // its quality: `q·d[k] + (1−q)·d[k] = d[k]`.
            return Ok(());
        }
        if !self.deconvolve_out(member.bucket, member.quality) {
            self.rebuild();
        }
        Ok(())
    }

    /// Replaces one member with another: a pop followed by a push, the
    /// `O(buckets)` annealing-neighbour operation.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAMember`] (leaving the state untouched) when
    /// `out` is not part of the current jury.
    pub fn swap_worker(&mut self, out: &Worker, incoming: &Worker) -> JqResult<()> {
        self.swap_quality(out.quality(), incoming.quality())
    }

    /// [`Self::swap_worker`] by raw qualities.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAMember`] when `out_quality` was never pushed.
    pub fn swap_quality(&mut self, out_quality: f64, in_quality: f64) -> JqResult<()> {
        self.pop_quality(out_quality)?;
        self.push_quality(in_quality);
        self.stats.swaps += 1;
        Ok(())
    }

    /// The current JQ estimate — the positive-key mass plus half the tied
    /// mass, exactly as in Algorithm 1. `O(buckets)`.
    pub fn jq(&self) -> f64 {
        let offset = self.total as usize;
        let tail: f64 = self.dist[offset + 1..].iter().sum();
        (tail + 0.5 * self.dist[offset]).clamp(0.0, 1.0)
    }

    /// Recomputes the JQ of the current member multiset from scratch on the
    /// same grid, without touching the incremental state. This is the value
    /// the incremental path must agree with; the property tests below pin
    /// the two together.
    pub fn from_scratch_jq(&self) -> f64 {
        let mut fresh = self.clone();
        fresh.rebuild();
        fresh.jq()
    }

    /// Rebuilds the dense distribution from the tracked member list — the
    /// fallback the deconvolution guard escalates to, also usable to shed
    /// accumulated floating-point drift after very long push/pop sequences.
    pub fn rebuild(&mut self) {
        // Reset through the scratch buffer (capacity is retained) so the
        // fallback path stays allocation-free in the steady state.
        self.scratch.clear();
        self.scratch.push(1.0);
        std::mem::swap(&mut self.dist, &mut self.scratch);
        self.total = 0;
        let members = std::mem::take(&mut self.members);
        for member in &members {
            self.convolve_in(member.bucket, member.quality);
        }
        self.members = members;
        self.stats.rebuilds += 1;
    }

    /// `new[k] = q·old[k−b] + (1−q)·old[k+b]` on the dense array. Old slot
    /// `i` holds key `k = i − total`; key `k + b` lands in new slot
    /// `i + 2b`, key `k − b` in new slot `i`.
    fn convolve_in(&mut self, bucket: i64, quality: f64) {
        if bucket == 0 {
            return; // identity: q·d[k] + (1−q)·d[k] = d[k]
        }
        let step = bucket as usize;
        match self.kernel {
            KernelMode::Vectorized => {
                kernel::convolve_spikes(&self.dist, &mut self.scratch, step, quality)
            }
            KernelMode::ScalarReference => {
                kernel::convolve_spikes_scalar(&self.dist, &mut self.scratch, step, quality)
            }
        }
        std::mem::swap(&mut self.dist, &mut self.scratch);
        self.total += bucket;
    }

    /// Inverts [`Self::convolve_in`]: solves `old` from
    /// `new[k] = q·old[k−b] + (1−q)·old[k+b]` top-down
    /// (`old[k] = (new[k+b] − (1−q)·old[k+2b]) / q`). Returns `false` when
    /// the stability guard rejects the result, leaving the state unchanged.
    fn deconvolve_out(&mut self, bucket: i64, quality: f64) -> bool {
        let step = bucket as usize;
        let ok = match self.kernel {
            KernelMode::Vectorized => kernel::deconvolve_spikes(
                &self.dist,
                &mut self.scratch,
                step,
                quality,
                self.tolerance,
            ),
            KernelMode::ScalarReference => kernel::deconvolve_spikes_scalar(
                &self.dist,
                &mut self.scratch,
                step,
                quality,
                self.tolerance,
            ),
        };
        if ok {
            std::mem::swap(&mut self.dist, &mut self.scratch);
            self.total -= bucket;
        }
        ok
    }
}

/// Stateful, incrementally-updatable computation of `JQ(J, MV, α)` — the
/// exact Poisson-binomial dynamic program of [`crate::mv`] under the same
/// push/pop/swap contract as [`IncrementalJq`].
///
/// Unlike the BV engine there is no quantization: the maintained vote-count
/// distributions are exact, so the values agree with [`crate::mv_jq`] to
/// floating-point noise. A neighbour evaluation costs `O(n)` instead of the
/// scratch DP's `O(n²)`.
#[derive(Debug, Clone)]
pub struct IncrementalMvJq {
    tolerance: f64,
    qualities: Vec<f64>,
    /// `Pr(#No votes = k | t = No)`; per-worker success probability `q_i`.
    dist_no: Vec<f64>,
    /// `Pr(#No votes = k | t = Yes)`; success probability `1 − q_i`.
    dist_yes: Vec<f64>,
    /// Double-buffers for the out-of-place kernels and the deconvolution
    /// targets, swapped with the distributions on success so pops never
    /// allocate once the buffers have grown to the working size.
    scratch_no: Vec<f64>,
    scratch_yes: Vec<f64>,
    kernel: KernelMode,
    stats: IncrementalStats,
}

impl Default for IncrementalMvJq {
    fn default() -> Self {
        IncrementalMvJq::new()
    }
}

impl IncrementalMvJq {
    /// Creates an empty engine.
    pub fn new() -> Self {
        let mut arena = JqScratch::new();
        Self::new_in(&mut arena)
    }

    /// [`Self::new`], drawing the engine's buffers from `arena` instead of
    /// allocating. With a warm arena (one that previously received this
    /// workload's buffers via [`Self::recycle`]) construction is
    /// allocation-free.
    pub fn new_in(arena: &mut JqScratch) -> Self {
        // Taken in descending order of expected size (the arena hands out
        // its largest buffer first), with the short `qualities` list last.
        let mut dist_no = arena.take_buffer();
        dist_no.push(1.0);
        let mut dist_yes = arena.take_buffer();
        dist_yes.push(1.0);
        let scratch_no = arena.take_buffer();
        let scratch_yes = arena.take_buffer();
        IncrementalMvJq {
            tolerance: IncrementalJqConfig::default().stability_tolerance,
            qualities: arena.take_buffer(),
            dist_no,
            dist_yes,
            scratch_no,
            scratch_yes,
            kernel: KernelMode::default(),
            stats: IncrementalStats::default(),
        }
    }

    /// Returns the engine's buffers to `arena`, consuming it.
    pub fn recycle(self, arena: &mut JqScratch) {
        arena.recycle_buffer(self.qualities);
        arena.recycle_buffer(self.dist_no);
        arena.recycle_buffer(self.dist_yes);
        arena.recycle_buffer(self.scratch_no);
        arena.recycle_buffer(self.scratch_yes);
    }

    /// Overrides the kernel implementation (vectorized vs scalar reference).
    pub fn with_kernel_mode(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Number of workers currently folded in.
    pub fn len(&self) -> usize {
        self.qualities.len()
    }

    /// Whether no worker has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.qualities.is_empty()
    }

    /// Work counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Folds one worker into both vote-count distributions: `O(n)`.
    pub fn push_worker(&mut self, worker: &Worker) {
        self.push_quality(worker.quality());
    }

    /// [`Self::push_worker`] by raw quality.
    pub fn push_quality(&mut self, quality: f64) {
        self.convolve_step(quality);
        self.qualities.push(quality);
        self.stats.pushes += 1;
    }

    /// Folds one Bernoulli trial into both distributions under the active
    /// kernel mode.
    fn convolve_step(&mut self, quality: f64) {
        match self.kernel {
            KernelMode::Vectorized => {
                kernel::convolve_bernoulli_out(&self.dist_no, &mut self.scratch_no, quality);
                std::mem::swap(&mut self.dist_no, &mut self.scratch_no);
                kernel::convolve_bernoulli_out(
                    &self.dist_yes,
                    &mut self.scratch_yes,
                    1.0 - quality,
                );
                std::mem::swap(&mut self.dist_yes, &mut self.scratch_yes);
            }
            KernelMode::ScalarReference => {
                convolve_bernoulli(&mut self.dist_no, quality);
                convolve_bernoulli(&mut self.dist_yes, 1.0 - quality);
            }
        }
    }

    /// Removes a worker by deconvolving both distributions, with a rebuild
    /// fallback under the stability guard.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAMember`] when the quality was never pushed.
    pub fn pop_worker(&mut self, worker: &Worker) -> JqResult<()> {
        self.pop_quality(worker.quality())
    }

    /// [`Self::pop_worker`] by raw quality.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAMember`] when the quality was never pushed.
    pub fn pop_quality(&mut self, quality: f64) -> JqResult<()> {
        let position = self
            .qualities
            .iter()
            .rposition(|q| q.to_bits() == quality.to_bits())
            .ok_or(JqError::NotAMember { quality })?;
        self.qualities.swap_remove(position);
        self.stats.pops += 1;
        // Both deconvolutions write into engine-owned scratch buffers; the
        // state is only swapped over when both pass the stability guard.
        let ok = kernel::deconvolve_bernoulli_into(
            &self.dist_no,
            quality,
            self.tolerance,
            &mut self.scratch_no,
        ) && kernel::deconvolve_bernoulli_into(
            &self.dist_yes,
            1.0 - quality,
            self.tolerance,
            &mut self.scratch_yes,
        );
        if ok {
            std::mem::swap(&mut self.dist_no, &mut self.scratch_no);
            std::mem::swap(&mut self.dist_yes, &mut self.scratch_yes);
        } else {
            self.rebuild();
        }
        Ok(())
    }

    /// Replaces one member with another in `O(n)`.
    ///
    /// # Errors
    ///
    /// Returns [`JqError::NotAMember`] when `out` is not a member.
    pub fn swap_worker(&mut self, out: &Worker, incoming: &Worker) -> JqResult<()> {
        self.pop_quality(out.quality())?;
        self.push_quality(incoming.quality());
        self.stats.swaps += 1;
        Ok(())
    }

    /// The current `JQ(J, MV, α)`: MV answers `No` iff at least
    /// `⌈(n+1)/2⌉` members voted `No` (see [`crate::mv`]).
    pub fn jq(&self, prior: Prior) -> f64 {
        let threshold = self.len() / 2 + 1;
        let alpha = prior.alpha();
        let correct_given_no: f64 = self.dist_no.iter().skip(threshold).sum();
        let correct_given_yes: f64 = self.dist_yes.iter().take(threshold).sum();
        (alpha * correct_given_no + (1.0 - alpha) * correct_given_yes).clamp(0.0, 1.0)
    }

    /// Rebuilds both distributions from the tracked qualities. Resets
    /// through the scratch buffers (capacity retained), so the fallback is
    /// allocation-free in the steady state.
    pub fn rebuild(&mut self) {
        self.scratch_no.clear();
        self.scratch_no.push(1.0);
        std::mem::swap(&mut self.dist_no, &mut self.scratch_no);
        self.scratch_yes.clear();
        self.scratch_yes.push(1.0);
        std::mem::swap(&mut self.dist_yes, &mut self.scratch_yes);
        let qualities = std::mem::take(&mut self.qualities);
        for &q in &qualities {
            self.convolve_step(q);
        }
        self.qualities = qualities;
        self.stats.rebuilds += 1;
    }
}

/// In-place Poisson-binomial update: adds one Bernoulli(`p`) trial — the
/// scalar reference for [`kernel::convolve_bernoulli_out`]. The inverse
/// (shared by both kernel modes, since its carry chain is inherently
/// sequential) lives in [`kernel::deconvolve_bernoulli_into`].
fn convolve_bernoulli(dist: &mut Vec<f64>, p: f64) {
    let n = dist.len();
    dist.push(0.0);
    for k in (0..=n).rev() {
        let stay = if k < n { dist[k] * (1.0 - p) } else { 0.0 };
        let step = if k > 0 { dist[k - 1] * p } else { 0.0 };
        dist[k] = stay + step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{BucketJqConfig, BucketJqEstimator};
    use crate::exact::exact_bv_jq;
    use crate::mv::mv_jq;
    use jury_model::{quality_from_log_odds, Jury};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Grid width the scratch estimator would use for this jury under a
    /// uniform prior and a fixed bucket count.
    fn scratch_grid(qualities: &[f64], num_buckets: usize) -> f64 {
        let upper = qualities
            .iter()
            .map(|&q| log_odds(q.max(1.0 - q)))
            .fold(0.0f64, f64::max);
        if upper > 0.0 {
            upper / num_buckets as f64
        } else {
            0.0
        }
    }

    #[test]
    fn matches_the_scratch_estimator_on_its_own_grid() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let n = rng.gen_range(1..=20);
            let qualities: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..0.98)).collect();
            let num_buckets = rng.gen_range(10..=400);
            let scratch = BucketJqEstimator::new(
                BucketJqConfig::default()
                    .with_buckets(BucketCount::Fixed(num_buckets))
                    .with_high_quality_shortcut(false),
            );
            let jury = Jury::from_qualities(&qualities).unwrap();
            let expected = scratch.jq(&jury, Prior::uniform());
            let mut engine = IncrementalJq::new(scratch_grid(&qualities, num_buckets));
            for &q in &qualities {
                engine.push_quality(q);
            }
            assert!(
                (engine.jq() - expected).abs() < 1e-9,
                "incremental {} vs scratch {} for {qualities:?} at {num_buckets} buckets",
                engine.jq(),
                expected
            );
        }
    }

    #[test]
    fn lattice_qualities_match_exact_jq_to_nine_digits() {
        // Qualities whose log-odds are exact multiples of the grid width
        // make the bucket quantization lossless, so the incremental dense DP
        // must agree with the exponential exact enumeration to fp noise.
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..60 {
            let n = rng.gen_range(1..=11);
            let delta = rng.gen_range(0.05..0.4);
            let qualities: Vec<f64> = (0..n)
                .map(|_| quality_from_log_odds(rng.gen_range(0..=10) as f64 * delta))
                .collect();
            let jury = Jury::from_qualities(&qualities).unwrap();
            let exact = exact_bv_jq(&jury, Prior::uniform()).unwrap();
            let mut engine = IncrementalJq::new(delta);
            for &q in &qualities {
                engine.push_quality(q);
            }
            assert!(
                (engine.jq() - exact).abs() < 1e-9,
                "incremental {} vs exact {exact} for lattice qualities {qualities:?}",
                engine.jq()
            );
        }
    }

    #[test]
    fn push_pop_swap_sequences_never_diverge_from_rebuild() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..12u64 {
            let mut engine = IncrementalJq::new(0.04 + 0.01 * (trial % 5) as f64);
            let mut live: Vec<f64> = Vec::new();
            for op_index in 0..80 {
                let op = rng.gen_range(0..3);
                if op == 0 || live.is_empty() {
                    let q = rng.gen_range(0.5..0.995);
                    engine.push_quality(q);
                    live.push(q);
                } else if op == 1 {
                    let idx = rng.gen_range(0..live.len());
                    let q = live.swap_remove(idx);
                    engine.pop_quality(q).unwrap();
                } else {
                    let idx = rng.gen_range(0..live.len());
                    let incoming = rng.gen_range(0.5..0.995);
                    let out = std::mem::replace(&mut live[idx], incoming);
                    engine.swap_quality(out, incoming).unwrap();
                }
                // A full from-scratch comparison is O(n · buckets); probing
                // every few ops (and after the last one) keeps the test fast
                // while still catching drift anywhere in the sequence.
                if op_index % 4 == 3 || op_index == 79 {
                    let incremental = engine.jq();
                    let scratch = engine.from_scratch_jq();
                    assert!(
                        (incremental - scratch).abs() < 1e-9,
                        "trial {trial}: incremental {incremental} vs rebuild {scratch} \
                         after {:?} ops",
                        engine.stats()
                    );
                }
            }
            assert_eq!(engine.len(), live.len());
        }
    }

    #[test]
    fn forced_rebuild_fallback_gives_identical_values() {
        // Tolerance 0 makes the stability guard reject essentially every
        // deconvolution, so every pop goes through the rebuild path — the
        // values must not change.
        let mut rng = StdRng::seed_from_u64(43);
        let mut strict = IncrementalJq::new(0.02).with_stability_tolerance(0.0);
        let mut relaxed = IncrementalJq::new(0.02);
        let mut live: Vec<f64> = Vec::new();
        for _ in 0..60 {
            if live.len() < 3 || rng.gen_bool(0.6) {
                let q = rng.gen_range(0.5..0.99);
                strict.push_quality(q);
                relaxed.push_quality(q);
                live.push(q);
            } else {
                let q = live.swap_remove(rng.gen_range(0..live.len()));
                strict.pop_quality(q).unwrap();
                relaxed.pop_quality(q).unwrap();
            }
            assert!((strict.jq() - relaxed.jq()).abs() < 1e-9);
        }
        assert!(
            strict.stats().rebuilds > relaxed.stats().rebuilds,
            "zero tolerance should force rebuilds: {:?} vs {:?}",
            strict.stats(),
            relaxed.stats()
        );
    }

    #[test]
    fn pop_of_a_stranger_is_a_typed_error_and_a_noop() {
        let mut engine = IncrementalJq::new(0.05);
        engine.push_quality(0.8);
        let before = engine.jq();
        let err = engine.pop_quality(0.7).unwrap_err();
        assert!(matches!(err, JqError::NotAMember { .. }));
        assert_eq!(engine.jq(), before);
        assert_eq!(engine.len(), 1);
        // Adversarial aliases resolve to the same effective member.
        engine.pop_quality(0.2).unwrap();
        assert!(engine.is_empty());
        assert!((engine.jq() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn for_pool_folds_the_prior_like_theorem_3() {
        let pool = jury_model::paper_example_pool();
        for alpha in [0.2, 0.5, 0.8] {
            let prior = Prior::new(alpha).unwrap();
            let mut engine = IncrementalJq::for_pool(&pool, prior, IncrementalJqConfig::default());
            for worker in pool.iter().take(3) {
                engine.push_worker(worker);
            }
            let jury = Jury::new(pool.workers()[..3].to_vec());
            let exact = exact_bv_jq(&jury, prior).unwrap();
            assert!(
                (engine.jq() - exact).abs() < 2e-3,
                "alpha {alpha}: incremental {} vs exact {exact}",
                engine.jq()
            );
        }
    }

    #[test]
    fn degenerate_grids_are_handled() {
        // All coin flips: grid collapses to zero width, JQ stays ½.
        let pool = jury_model::WorkerPool::from_qualities(&[0.5, 0.5]).unwrap();
        let mut engine =
            IncrementalJq::for_pool(&pool, Prior::uniform(), IncrementalJqConfig::default());
        assert_eq!(engine.bucket_size(), 0.0);
        for worker in pool.iter() {
            engine.push_worker(worker);
        }
        assert!((engine.jq() - 0.5).abs() < 1e-12);
        engine.pop_quality(0.5).unwrap();
        assert!((engine.jq() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn config_caps_the_grid_for_huge_pools() {
        let config = IncrementalJqConfig::default();
        // 200 workers at 200 buckets per worker would want 40 000 buckets;
        // the cap keeps pool_len · buckets within max_total_weight.
        let resolved = config.resolve_buckets(200);
        assert!(resolved as i64 * 200 <= config.max_total_weight);
        assert!(config.resolve_buckets(5) >= 200);
        // The builder clamps negative tolerances.
        assert_eq!(
            config.with_stability_tolerance(-1.0).stability_tolerance,
            0.0
        );
    }

    #[test]
    fn incremental_mv_matches_the_dynamic_program() {
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..30 {
            let mut engine = IncrementalMvJq::new();
            let mut live: Vec<f64> = Vec::new();
            for _ in 0..60 {
                if live.len() < 2 || rng.gen_bool(0.55) {
                    let q = rng.gen_range(0.05..0.99);
                    engine.push_quality(q);
                    live.push(q);
                } else {
                    let q = live.swap_remove(rng.gen_range(0..live.len()));
                    engine.pop_quality(q).unwrap();
                }
                let jury = Jury::from_qualities(&live).unwrap();
                for alpha in [0.3, 0.5, 0.8] {
                    let prior = Prior::new(alpha).unwrap();
                    let expected = mv_jq(&jury, prior).unwrap();
                    assert!(
                        (engine.jq(prior) - expected).abs() < 1e-9,
                        "incremental MV {} vs DP {expected} for {live:?}, alpha {alpha}",
                        engine.jq(prior)
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_mv_rejects_strangers_and_survives_extremes() {
        let mut engine = IncrementalMvJq::new();
        engine.push_quality(1.0);
        engine.push_quality(0.0);
        engine.push_quality(0.6);
        let jury = Jury::from_qualities(&[1.0, 0.0, 0.6]).unwrap();
        let expected = mv_jq(&jury, Prior::uniform()).unwrap();
        assert!((engine.jq(Prior::uniform()) - expected).abs() < 1e-12);
        assert!(matches!(
            engine.pop_quality(0.42).unwrap_err(),
            JqError::NotAMember { .. }
        ));
        engine.pop_quality(1.0).unwrap();
        engine.pop_quality(0.0).unwrap();
        let single = mv_jq(&Jury::from_qualities(&[0.6]).unwrap(), Prior::uniform()).unwrap();
        assert!((engine.jq(Prior::uniform()) - single).abs() < 1e-12);
    }

    #[test]
    fn arena_round_trip_matches_fresh_construction() {
        let pool = jury_model::paper_example_pool();
        let mut arena = JqScratch::new();
        let config = IncrementalJqConfig::default();
        let mut warm = IncrementalJq::for_pool_in(&pool, Prior::uniform(), config, &mut arena);
        for worker in pool.iter() {
            warm.push_worker(worker);
        }
        let expected = warm.jq();
        warm.recycle(&mut arena);
        assert!(arena.buffers_held() >= 2);
        // A second engine from the warm arena reproduces the value exactly.
        let mut again = IncrementalJq::for_pool_in(&pool, Prior::uniform(), config, &mut arena);
        for worker in pool.iter() {
            again.push_worker(worker);
        }
        assert_eq!(again.jq(), expected);
    }

    /// Drives a fixed op sequence against both kernel modes (and, for the
    /// binary engine, both stability tolerances so the forced rebuild
    /// fallback is covered) and demands agreement to 1e-12 after every op.
    mod kernel_equivalence {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Push(f64),
            Pop(usize),
            Swap(usize, f64),
        }

        fn ops() -> impl Strategy<Value = Vec<Op>> {
            proptest::collection::vec(
                prop_oneof![
                    (0.5f64..0.995).prop_map(Op::Push),
                    (0usize..1000).prop_map(Op::Pop),
                    ((0usize..1000), 0.5f64..0.995).prop_map(|(i, q)| Op::Swap(i, q)),
                ],
                1..50,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Tentpole invariant: vectorized push/pop/swap == scalar
            /// reference == forced from-scratch rebuild, to 1e-12, on the
            /// binary bucket engine.
            #[test]
            fn binary_vectorized_matches_scalar_and_rebuild(
                ops in ops(),
                delta in 0.02f64..0.1,
            ) {
                let mut fast = IncrementalJq::new(delta);
                let mut slow = IncrementalJq::new(delta)
                    .with_kernel_mode(KernelMode::ScalarReference);
                // Tolerance 0 rejects every deconvolution, so this engine
                // answers every pop through the rebuild fallback.
                let mut rebuilt = IncrementalJq::new(delta).with_stability_tolerance(0.0);
                let mut live: Vec<f64> = Vec::new();
                for op in &ops {
                    match *op {
                        Op::Push(q) => {
                            fast.push_quality(q);
                            slow.push_quality(q);
                            rebuilt.push_quality(q);
                            live.push(q);
                        }
                        Op::Pop(i) => {
                            if live.is_empty() { continue; }
                            let q = live.swap_remove(i % live.len());
                            fast.pop_quality(q).unwrap();
                            slow.pop_quality(q).unwrap();
                            rebuilt.pop_quality(q).unwrap();
                        }
                        Op::Swap(i, incoming) => {
                            if live.is_empty() { continue; }
                            let idx = i % live.len();
                            let out = std::mem::replace(&mut live[idx], incoming);
                            fast.swap_quality(out, incoming).unwrap();
                            slow.swap_quality(out, incoming).unwrap();
                            rebuilt.swap_quality(out, incoming).unwrap();
                        }
                    }
                    prop_assert!((fast.jq() - slow.jq()).abs() <= 1e-12,
                        "vectorized {} vs scalar {}", fast.jq(), slow.jq());
                    prop_assert!((fast.jq() - rebuilt.jq()).abs() <= 1e-12,
                        "vectorized {} vs rebuild {}", fast.jq(), rebuilt.jq());
                }
                prop_assert!((fast.jq() - fast.from_scratch_jq()).abs() <= 1e-12);
            }

            /// The same invariant for the MV Poisson-binomial engine.
            #[test]
            fn mv_vectorized_matches_scalar_and_rebuild(ops in ops()) {
                let mut fast = IncrementalMvJq::new();
                let mut slow = IncrementalMvJq::new()
                    .with_kernel_mode(KernelMode::ScalarReference);
                let mut live: Vec<f64> = Vec::new();
                let prior = Prior::new(0.6).unwrap();
                for op in &ops {
                    match *op {
                        Op::Push(q) => {
                            fast.push_quality(q);
                            slow.push_quality(q);
                            live.push(q);
                        }
                        Op::Pop(i) => {
                            if live.is_empty() { continue; }
                            let q = live.swap_remove(i % live.len());
                            fast.pop_quality(q).unwrap();
                            slow.pop_quality(q).unwrap();
                        }
                        Op::Swap(i, incoming) => {
                            if live.is_empty() { continue; }
                            let idx = i % live.len();
                            let out = std::mem::replace(&mut live[idx], incoming);
                            fast.swap_worker(
                                &jury_model::Worker::free(jury_model::WorkerId(0), out).unwrap(),
                                &jury_model::Worker::free(jury_model::WorkerId(0), incoming)
                                    .unwrap(),
                            ).unwrap();
                            slow.pop_quality(out).unwrap();
                            slow.push_quality(incoming);
                        }
                    }
                    prop_assert!((fast.jq(prior) - slow.jq(prior)).abs() <= 1e-12,
                        "vectorized {} vs scalar {}", fast.jq(prior), slow.jq(prior));
                    // Rebuild (shared by both modes) must agree too.
                    let mut scratch = fast.clone();
                    scratch.rebuild();
                    prop_assert!((fast.jq(prior) - scratch.jq(prior)).abs() <= 1e-12);
                }
            }
        }
    }
}
