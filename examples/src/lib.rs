// placeholder
