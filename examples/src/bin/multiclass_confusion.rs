//! The Section 7 extension in action: multiple-choice tasks and
//! confusion-matrix workers.
//!
//! A three-label sentiment task (positive / neutral / negative) is answered
//! by workers described by full confusion matrices. The example shows that
//! multi-class Bayesian voting dominates plurality voting, that the
//! tuple-key approximation of the multi-class JQ tracks the exact value, and
//! how the informativeness score flags spammer-like workers.
//!
//! Run with:
//! ```text
//! cargo run -p jury-examples --release --bin multiclass_confusion
//! ```

use jury_jq::{
    approx_multiclass_bv_jq, exact_multiclass_bv_jq, exact_multiclass_jq, MultiClassBucketConfig,
};
use jury_model::{
    CategoricalPrior, ConfusionMatrix, Label, MatrixJury, MatrixWorker, MultiClassTask, TaskId,
    WorkerId,
};
use jury_voting::{BayesianMultiClassVoting, MultiClassVotingStrategy, PluralityVoting};

fn main() {
    let task = MultiClassTask::sentiment(TaskId(1), "the new release is shockingly slow");
    println!("Task: {}", task.question());
    println!("Choices: {:?}\n", task.choices());

    // Four workers: a careful one, one who confuses neutral with negative,
    // an average one, and a near-spammer.
    let workers = vec![
        MatrixWorker::new(
            WorkerId(0),
            ConfusionMatrix::new(
                3,
                vec![0.90, 0.05, 0.05, 0.08, 0.84, 0.08, 0.05, 0.05, 0.90],
            )
            .unwrap(),
            4.0,
        )
        .unwrap(),
        MatrixWorker::new(
            WorkerId(1),
            ConfusionMatrix::new(
                3,
                vec![0.80, 0.15, 0.05, 0.05, 0.55, 0.40, 0.05, 0.25, 0.70],
            )
            .unwrap(),
            2.0,
        )
        .unwrap(),
        MatrixWorker::new(
            WorkerId(2),
            ConfusionMatrix::from_quality(0.7, 3).unwrap(),
            1.5,
        )
        .unwrap(),
        MatrixWorker::new(
            WorkerId(3),
            ConfusionMatrix::from_quality(0.4, 3).unwrap(),
            0.5,
        )
        .unwrap(),
    ];

    println!("Worker informativeness (0 = pure spammer):");
    for worker in &workers {
        println!(
            "  {}: mean accuracy {:.2}, informativeness {:.3}, cost {:.1}",
            worker.id(),
            worker.confusion().mean_accuracy(),
            worker.confusion().informativeness(),
            worker.cost()
        );
    }

    let jury = MatrixJury::new(workers).unwrap();
    let prior = CategoricalPrior::new(vec![0.2, 0.3, 0.5]).unwrap();

    // A concrete voting: the strong worker says negative, two others say
    // neutral, the near-spammer says positive.
    let votes = vec![Label(2), Label(1), Label(1), Label(0)];
    let plurality = PluralityVoting::new()
        .decide(&jury, &votes, &prior)
        .unwrap();
    let bayesian = BayesianMultiClassVoting::new()
        .decide(&jury, &votes, &prior)
        .unwrap();
    println!("\nVotes (by worker): {votes:?}");
    println!(
        "Plurality voting answers: {} ({})",
        plurality,
        task.choices()[plurality.index()]
    );
    println!(
        "Bayesian voting answers:  {} ({})",
        bayesian,
        task.choices()[bayesian.index()]
    );

    // Jury quality under both strategies, exact and approximate.
    let jq_plurality = exact_multiclass_jq(&jury, &PluralityVoting::new(), &prior).unwrap();
    let jq_bv = exact_multiclass_bv_jq(&jury, &prior).unwrap();
    let jq_bv_approx =
        approx_multiclass_bv_jq(&jury, &prior, MultiClassBucketConfig::default()).unwrap();
    println!(
        "\nJury quality under plurality voting: {:.2}%",
        jq_plurality * 100.0
    );
    println!(
        "Jury quality under Bayesian voting:  {:.2}% (exact)",
        jq_bv * 100.0
    );
    println!(
        "Jury quality under Bayesian voting:  {:.2}% (bucketed approximation)",
        jq_bv_approx * 100.0
    );
    println!(
        "\nBayesian voting's lead over plurality: {:+.2}% — the Section 7 claim that BV stays optimal.",
        (jq_bv - jq_plurality) * 100.0
    );
}
