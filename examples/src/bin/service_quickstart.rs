//! Quickstart for the `jury-service` API: single selections, parallel
//! batches with per-request errors, and the budget–quality endpoint.
//!
//! Run with:
//! ```text
//! cargo run -p jury-examples --release --bin service_quickstart
//! ```

use jury_model::{paper_example_pool, Prior};
use jury_service::{JuryService, SelectionRequest, SolverPolicy, Strategy};

fn main() {
    let service = JuryService::paper_experiments();
    let pool = paper_example_pool();

    // One request: the paper's 7-worker example at budget 15.
    let request = SelectionRequest::new(pool.clone(), 15.0)
        .with_prior(Prior::uniform())
        .with_strategy(Strategy::Bv)
        .with_policy(SolverPolicy::Auto);
    match service.select(&request) {
        Ok(response) => println!(
            "select:       jury {:?}, quality {:.3}, cost {}, solver {}, {} evaluations",
            response.worker_ids(),
            response.quality,
            response.cost,
            response.solver,
            response.evaluations
        ),
        Err(err) => println!("select:       error: {err}"),
    }

    // A batch mixing valid and invalid requests: errors are per-slot.
    let batch = vec![
        request.clone(),
        SelectionRequest::new(pool.clone(), -1.0), // invalid budget
        SelectionRequest::new(pool.clone(), 15.0).with_prior_alpha(2.0), // invalid prior
        SelectionRequest::new(pool.clone(), 1.0),  // below the cheapest worker
        request.clone().with_strategy(Strategy::Mv),
    ];
    println!("select_batch: {} requests", batch.len());
    for (i, result) in service.select_batch(&batch).iter().enumerate() {
        match result {
            Ok(response) => println!(
                "  [{i}] ok:    {} jury {:?} at quality {:.3}",
                response.strategy,
                response.worker_ids(),
                response.quality
            ),
            Err(err) => println!("  [{i}] error: {err}"),
        }
    }

    // The Figure 1 sweep through the same batched path.
    let table = service
        .budget_quality_table(&pool, &[5.0, 10.0, 15.0, 20.0], Prior::uniform())
        .expect("valid budgets");
    println!("\nbudget_quality_table:\n{}", table.render());

    let stats = service.cache_stats();
    println!(
        "jq cache: {} entries, {} hits / {} misses ({:.0}% hit rate)",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
