//! Sentiment-analysis campaign, end to end: simulate an AMT-like campaign
//! (the paper's real-data scenario), estimate worker qualities from the
//! collected answers — both with the simple empirical estimator and with
//! Dawid–Skene EM — and then re-run jury selection per task to see how much
//! budget OPTJS saves over using every collected vote.
//!
//! Run with:
//! ```text
//! cargo run -p jury-examples --release --bin sentiment_analysis
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_jq::JqEngine;
use jury_model::Prior;
use jury_optjs::{run_on_dataset, Optjs, SystemConfig};
use jury_sim::{
    dawid_skene_fit, empirical_qualities, mean_absolute_error, prefix_sweep, AmtCampaignConfig,
    AmtSimulator, DawidSkeneConfig,
};

fn main() {
    // Simulate the crowdsourcing campaign: 150 tweets, 64 workers, 20 votes
    // per tweet (a scaled-down version of the paper's 600/128/20 campaign).
    let campaign = AmtCampaignConfig {
        num_tasks: 150,
        num_workers: 64,
        votes_per_task: 20,
        questions_per_hit: 20,
        cost_mean: 0.05,
        cost_std_dev: 0.2,
    };
    let simulator = AmtSimulator::new(campaign);
    let mut rng = StdRng::seed_from_u64(99);
    let dataset = simulator.run(&mut rng).expect("valid campaign");
    println!(
        "Collected {} votes over {} tasks from {} workers ({:.1} answers/worker)",
        dataset.num_votes(),
        dataset.num_tasks(),
        dataset.num_workers(),
        dataset.mean_answers_per_worker()
    );
    println!(
        "Mean empirical worker quality: {:.3}\n",
        dataset.mean_empirical_quality()
    );

    // Worker quality estimation: ground-truth-based vs unsupervised EM.
    let empirical = empirical_qualities(&dataset, 0.0);
    let em = dawid_skene_fit(&dataset, DawidSkeneConfig::default());
    println!(
        "Dawid-Skene EM: converged = {}, iterations = {}, label accuracy = {:.2}%",
        em.converged,
        em.iterations,
        em.accuracy_against(&dataset) * 100.0
    );
    println!(
        "Mean |EM quality - empirical quality| over workers: {:.4}\n",
        mean_absolute_error(&em.qualities, &empirical)
    );

    // Replay the dataset through OPTJS with a per-task budget: how accurate
    // is the selected (cheaper) jury compared to using all 20 votes?
    let system = Optjs::new(SystemConfig::fast());
    for budget in [0.2, 0.5, 1.0] {
        let report =
            run_on_dataset(&system, &dataset, budget).expect("the example budget is valid");
        println!(
            "budget {budget:.1}: accuracy {:.2}%, predicted JQ {:.2}%, mean jury cost {:.3}",
            report.accuracy * 100.0,
            report.mean_predicted_jq * 100.0,
            report.mean_cost
        );
    }

    // Is JQ a good prediction? (the Figure 10(d) question, on this campaign)
    let engine = JqEngine::default();
    println!("\nPredicted JQ vs realized accuracy as more votes are used:");
    println!("{:>4} | {:>10} | {:>12}", "z", "accuracy", "predicted JQ");
    for point in prefix_sweep(&dataset, &[3, 6, 9, 12, 15, 18], Prior::uniform(), &engine) {
        println!(
            "{:>4} | {:>9.2}% | {:>11.2}%",
            point.votes_used,
            point.accuracy * 100.0,
            point.average_jq * 100.0
        );
    }
}
