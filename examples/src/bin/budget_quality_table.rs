//! Budget planning for a large synthetic crowd: generate a pool of workers
//! with the paper's Gaussian quality/cost model, build the budget–quality
//! table with OPTJS, and compare against the MVJS baseline at each budget —
//! the workflow a task provider would follow before spending anything.
//!
//! Run with:
//! ```text
//! cargo run -p jury-examples --release --bin budget_quality_table
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_model::{GaussianWorkerGenerator, Prior};
use jury_optjs::{ComparisonSeries, Mvjs, Optjs, SystemConfig};

fn main() {
    // A synthetic crowd of 50 candidates (Section 6.1.1 defaults).
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut rng = StdRng::seed_from_u64(7);
    let pool = generator.generate(50, &mut rng);
    println!(
        "Candidate pool: {} workers, mean quality {:.3}, total cost {:.2}\n",
        pool.len(),
        pool.mean_quality(),
        pool.total_cost()
    );

    let config = SystemConfig::fast();
    let optjs = Optjs::new(config);
    let mvjs = Mvjs::new(config);

    // Budget-quality table under OPTJS.
    let budgets: Vec<f64> = (1..=8).map(|i| i as f64 * 0.1).collect();
    let table = optjs
        .budget_quality_table(&pool, &budgets, Prior::uniform())
        .expect("the example budgets are valid");
    println!("OPTJS budget-quality table:");
    println!("{}", table.render());

    println!("Marginal quality gained per extra 0.1 of budget:");
    for (row, gain) in table.rows().iter().zip(table.marginal_gains().iter()) {
        println!("  budget {:.1}: {:+.2}%", row.budget, gain * 100.0);
    }

    if let Some(row) = table.cheapest_reaching(0.95) {
        println!(
            "\nCheapest way to reach 95% quality: budget {:.1} (actually spends {:.2})",
            row.budget, row.required_budget
        );
    }

    // Head-to-head with the MVJS baseline at each budget.
    let mut comparison = ComparisonSeries::new("budget");
    for &budget in &budgets {
        let o = optjs
            .select(&pool, budget, Prior::uniform())
            .expect("the example budget is valid");
        let m = mvjs
            .select(&pool, budget, Prior::uniform())
            .expect("the example budget is valid");
        comparison.push(budget, o.estimated_quality, m.estimated_quality);
    }
    println!("\nOPTJS vs the majority-voting baseline (MVJS):");
    println!("{}", comparison.render());
    println!(
        "Average OPTJS lead: {:+.2}%",
        comparison.mean_lead() * 100.0
    );
}
