//! Quickstart: the full OPTJS loop on the paper's running example.
//!
//! 1. Describe the candidate workers (quality, cost) and the task prior.
//! 2. Ask the system for the budget–quality table (Figure 1).
//! 3. Pick a budget, select the optimal jury, collect (simulated) votes, and
//!    aggregate them with Bayesian voting.
//!
//! Run with:
//! ```text
//! cargo run -p jury-examples --release --bin quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_model::{paper_example_pool, Answer, DecisionTask, Prior};
use jury_optjs::{run_simulated_task, Optjs, SystemConfig};

fn main() {
    // The decision-making task of Figure 1, with the provider's 70/30 prior.
    let task = DecisionTask::paper_example();
    println!("Task: {}", task.question());
    println!(
        "Prior: {} (the provider leans towards 'no')\n",
        task.prior()
    );

    // The seven candidate workers A–G with their (quality, cost) pairs.
    let pool = paper_example_pool();
    println!("Candidate workers:");
    for worker in pool.iter() {
        println!(
            "  {}: quality {:.2}, cost ${:.0}",
            worker.id(),
            worker.quality(),
            worker.cost()
        );
    }

    // Build the budget–quality table so the provider can choose a budget.
    let system = Optjs::new(SystemConfig::paper_experiments());
    let table = system
        .budget_quality_table(&pool, &[5.0, 10.0, 15.0, 20.0], Prior::uniform())
        .expect("the example budgets are valid");
    println!("\nBudget-quality table (uniform prior, as in Figure 1):");
    println!("{}", table.render());

    // The provider decides 15 units is the sweet spot; run the whole loop.
    let mut rng = StdRng::seed_from_u64(2015);
    let truth = task.ground_truth().unwrap_or(Answer::No);
    let outcome = run_simulated_task(&system, &pool, 15.0, task.prior(), truth, &mut rng)
        .expect("the example budget is valid");

    println!("Selected jury: {:?}", outcome.selected);
    println!("Jury cost: ${:.0}", outcome.cost);
    println!(
        "Predicted jury quality: {:.2}%",
        outcome.predicted_jq * 100.0
    );
    println!(
        "Aggregated answer: {}  (ground truth: {})",
        outcome.decided, outcome.truth
    );
    println!("Correct: {}", outcome.is_correct());
}
