//! Strategy shoot-out: every voting strategy in the catalogue (Table 2 of
//! the paper) evaluated on the same juries, both analytically (exact JQ) and
//! by Monte-Carlo simulation of actual crowdsourcing rounds.
//!
//! Run with:
//! ```text
//! cargo run -p jury-examples --release --bin strategy_shootout
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_jq::exact_jq;
use jury_model::{GaussianWorkerGenerator, Jury, Prior};
use jury_sim::simulate_strategy_accuracy;
use jury_voting::all_strategies;

fn main() {
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut rng = StdRng::seed_from_u64(11);

    // Three juries of increasing size drawn from the synthetic crowd.
    for &n in &[3usize, 7, 11] {
        let qualities: Vec<f64> = (0..n).map(|_| generator.sample_quality(&mut rng)).collect();
        let jury = Jury::from_qualities(&qualities).unwrap();
        println!(
            "Jury of {n} workers (qualities: {:?})",
            qualities
                .iter()
                .map(|q| (q * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
        println!(
            "{:<10} | {:<13} | {:>11} | {:>14}",
            "strategy", "kind", "analytic JQ", "simulated acc."
        );
        println!("-----------+---------------+-------------+---------------");

        let mut best: (String, f64) = (String::new(), 0.0);
        for entry in all_strategies() {
            let analytic = exact_jq(&jury, entry.strategy.as_ref(), Prior::uniform()).unwrap();
            let simulated = simulate_strategy_accuracy(
                &jury,
                entry.strategy.as_ref(),
                Prior::uniform(),
                20_000,
                &mut rng,
            );
            println!(
                "{:<10} | {:<13} | {:>10.2}% | {:>13.2}%",
                entry.name(),
                entry.kind.to_string(),
                analytic * 100.0,
                simulated * 100.0
            );
            if analytic > best.1 {
                best = (entry.name().to_string(), analytic);
            }
        }
        println!(
            "Best strategy: {} at {:.2}% — Bayesian voting, as Theorem 1 predicts.\n",
            best.0,
            best.1 * 100.0
        );
    }
}
