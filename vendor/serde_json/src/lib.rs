//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] / [`to_string_pretty`] / [`from_str`], the [`Value`] type
//! (re-exported from the `serde` shim), and the [`json!`] macro.

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// `Result` alias matching serde_json's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable type to the dynamic [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // Round-trippable shortest representation; ensure a decimal point or
        // exponent survives so the value re-parses as a float.
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this shim's
                            // writer; reject them on input for simplicity.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(slice)
                            .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
                    );
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("expected value at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|i| Value::I64(-i))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Implementation detail of [`json!`] — a fresh object buffer (behind a
/// function call so expansion sites don't trip `vec_init_then_push`).
#[doc(hidden)]
pub fn new_object_buffer() -> Vec<(String, Value)> {
    Vec::new()
}

/// Implementation detail of [`json!`] — a fresh array buffer.
#[doc(hidden)]
pub fn new_array_buffer() -> Vec<Value> {
    Vec::new()
}

/// Builds a [`Value`] from JSON-like literal syntax, with Rust expressions
/// allowed in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut obj = $crate::new_object_buffer();
        $crate::json_object_internal!(obj; $($tt)+);
        $crate::Value::Object(obj)
    }};
    ([ $($tt:tt)+ ]) => {{
        let mut arr = $crate::new_array_buffer();
        $crate::json_array_internal!(arr; $($tt)+);
        $crate::Value::Array(arr)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : null , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : null) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
    };
    ($obj:ident; $key:literal : { $($v:tt)* } , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!({ $($v)* })));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : { $($v:tt)* }) => {
        $obj.push(($key.to_string(), $crate::json!({ $($v)* })));
    };
    ($obj:ident; $key:literal : [ $($v:tt)* ] , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!([ $($v)* ])));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : [ $($v:tt)* ]) => {
        $obj.push(($key.to_string(), $crate::json!([ $($v)* ])));
    };
    ($obj:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::to_value(&$val)));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : $val:expr) => {
        $obj.push(($key.to_string(), $crate::to_value(&$val)));
    };
}

/// Implementation detail of [`json!`]: munches array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ($arr:ident;) => {};
    ($arr:ident; null , $($rest:tt)*) => {
        $arr.push($crate::Value::Null);
        $crate::json_array_internal!($arr; $($rest)*);
    };
    ($arr:ident; null) => {
        $arr.push($crate::Value::Null);
    };
    ($arr:ident; { $($v:tt)* } , $($rest:tt)*) => {
        $arr.push($crate::json!({ $($v)* }));
        $crate::json_array_internal!($arr; $($rest)*);
    };
    ($arr:ident; { $($v:tt)* }) => {
        $arr.push($crate::json!({ $($v)* }));
    };
    ($arr:ident; [ $($v:tt)* ] , $($rest:tt)*) => {
        $arr.push($crate::json!([ $($v)* ]));
        $crate::json_array_internal!($arr; $($rest)*);
    };
    ($arr:ident; [ $($v:tt)* ]) => {
        $arr.push($crate::json!([ $($v)* ]));
    };
    ($arr:ident; $val:expr , $($rest:tt)*) => {
        $arr.push($crate::to_value(&$val));
        $crate::json_array_internal!($arr; $($rest)*);
    };
    ($arr:ident; $val:expr) => {
        $arr.push($crate::to_value(&$val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = json!({
            "name": "jury",
            "sizes": [1, 2, 3],
            "nested": {"pi": 3.5, "ok": true, "none": null},
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "round-trip failed for {text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd\té—ü".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_preserve_integerness() {
        let text = to_string(&json!([1, -2, 1.5])).unwrap();
        assert_eq!(text, "[1,-2,1.5]");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(
            back,
            Value::Array(vec![Value::U64(1), Value::I64(-2), Value::F64(1.5)])
        );
    }

    #[test]
    fn floats_always_reparse_as_floats() {
        let text = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn json_macro_accepts_expressions() {
        let xs = vec![1u32, 2, 3];
        let v = json!({"total": xs.len(), "values": xs, "mixed": [0.0, "inf"]});
        assert_eq!(v.field("total").unwrap(), &Value::U64(3));
        assert_eq!(
            v.field("mixed").unwrap().element(1).unwrap(),
            &Value::String("inf".into())
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
