//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The real serde's visitor-based architecture is replaced by a much simpler
//! model: every serializable type converts to and from a JSON-like
//! [`Value`]. The derive macros (`#[derive(Serialize, Deserialize)]`, from
//! the sibling `serde_derive` shim) and the `serde_json` shim build on it.
//! Round-tripping within this shim is lossless for the shapes the workspace
//! serializes; wire compatibility with upstream serde_json is *not* a goal.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like dynamic value — the shim's entire serde data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value, failing with a typed error.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Looks up an element of an array value, failing with a typed error.
    pub fn element(&self, index: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(index)
                .ok_or_else(|| Error::custom(format!("missing array element {index}"))),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as an enum variant name.
    pub fn as_variant(&self) -> Result<&str, Error> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(Error::custom(format!(
                "expected variant string, got {}",
                other.kind()
            ))),
        }
    }

    /// The value's JSON type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The object entries, if the value is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the shim data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from the shim data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => Ok(f as $t),
                    ref other => Err(Error::custom(format!(
                        "expected unsigned integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    Value::I64(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom(format!("{i} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 => Ok(f as $t),
                    ref other => Err(Error::custom(format!(
                        "expected integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ---- composite impls ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok((A::from_value(v.element(0)?)?, B::from_value(v.element(1)?)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok((
            A::from_value(v.element(0)?)?,
            B::from_value(v.element(1)?)?,
            C::from_value(v.element(2)?)?,
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::F64(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = f64::from_value(v)?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(Error::custom(format!("invalid duration {secs}")));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Some(7u32).to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn field_lookup_errors_are_typed() {
        let obj = Value::Object(vec![("a".to_string(), Value::U64(1))]);
        assert!(obj.field("a").is_ok());
        assert!(obj
            .field("b")
            .unwrap_err()
            .to_string()
            .contains("missing field"));
        assert!(Value::Null.field("a").is_err());
    }
}
