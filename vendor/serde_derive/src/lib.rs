//! Offline shim for `serde_derive`, targeting the workspace's simplified
//! serde data model (`Serialize::to_value` / `Deserialize::from_value`).
//!
//! Supported shapes — the only ones the workspace uses:
//!
//! * structs with named fields        → JSON-like objects;
//! * tuple structs (any arity; a single field serializes transparently);
//! * unit structs                     → null;
//! * enums with unit variants         → the variant name as a string.
//!
//! Generics and serde attributes are intentionally unsupported; hitting one
//! is a compile-time panic with a clear message rather than silent
//! mis-serialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skips `#[...]` attribute groups starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: unexpected token {other:?} in fields"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected ':' after field {name}, got {other:?}"),
        }
        // Skip the type up to the next top-level ',' (tracking angle depth).
        let mut angle: i32 = 0;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut saw_token_since_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    saw_token_since_comma = false;
                    count += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: unexpected token {other:?} in enum"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive shim: enum variant {name} carries data; only unit variants are supported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive shim: explicit discriminants are not supported ({name})")
            }
            other => panic!("serde_derive shim: unexpected token {other:?} after variant {name}"),
        }
        variants.push(name);
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type {name} is not supported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g))
            }
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for a {other}"),
    };
    Item { name, shape }
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut obj: Vec<(String, ::serde::Value)> = Vec::new(); {} ::serde::Value::Object(obj)",
                pushes.join(" ")
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let pushes: Vec<String> = (0..*n)
                .map(|i| format!("arr.push(::serde::Serialize::to_value(&self.{i}));"))
                .collect();
            format!(
                "let mut arr: Vec<::serde::Value> = Vec::new(); {} ::serde::Value::Array(arr)",
                pushes.join(" ")
            )
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),"))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?,"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(" "))
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(v.element({i})?)?,"))
                .collect();
            format!("Ok({name}({}))", elems.join(" "))
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "match v.as_variant()? {{ {} other => Err(::serde::Error::custom(format!(\
                 \"unknown variant {{other}} for {name}\"))) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
    .parse()
    .expect("serde_derive shim: generated invalid Deserialize impl")
}
