//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The shim keeps proptest's surface — the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `collection::vec`, `bool::ANY`, `prop_assert!`/`prop_assert_eq!` — but
//! replaces the engine with plain seeded random sampling: each test runs
//! `cases` deterministic samples and reports the first failure (without
//! shrinking).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one sampled test case.
pub type TestCaseResult = Result<(), String>;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Mirror real proptest: the PROPTEST_CASES environment variable
        // overrides the default case count (explicit `with_cases` calls
        // still win, exactly like upstream), so CI can bound and reproduce
        // property-test runtime.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&cases| cases > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// Config running `cases` sampled cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Strategy choosing uniformly among boxed alternatives — the engine behind
/// [`prop_oneof!`]. Built fluently: `Union::new().or(a).or(b)`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates an empty union; sampling panics until an option is added.
    pub fn new() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(strategy));
        self
    }
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Union::new()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}

/// Picks uniformly among the given strategies (all must produce the same
/// value type). The unweighted subset of real proptest's `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new()$(.or($strategy))+
    };
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual proptest imports.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, Union,
    };
}

/// Runs `cases` deterministic samples of a property; used by [`proptest!`].
pub fn run_cases(config: &ProptestConfig, mut case: impl FnMut(&mut StdRng) -> TestCaseResult) {
    // A fixed base seed keeps test runs reproducible; vary per case index.
    for i in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        if let Err(message) = case(&mut rng) {
            panic!("proptest case {i}/{} failed: {message}", config.cases);
        }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    // Callers conventionally write `#[test]` on each property themselves
    // (real proptest re-emits it); the shim forwards the metas verbatim, so
    // it must not add a second `#[test]`.
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_cases(&config, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), rng);)*
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!("assertion failed: {:?} != {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.25f64..0.75, n in 1usize..10) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn prop_map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 20);
        }

        #[test]
        fn tuples_and_bools(pair in (0.0f64..1.0, 1usize..4), b in crate::bool::ANY) {
            prop_assert!(pair.0 < 1.0 && pair.1 >= 1);
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_context() {
        crate::run_cases(&ProptestConfig::with_cases(3), |_rng| {
            Err("forced failure".to_string())
        });
    }
}
