//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a deterministic, dependency-free re-implementation of the APIs it relies
//! on: [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64 — *not* the
//! upstream ChaCha12, so raw streams differ from upstream `rand`, but all
//! workspace code only requires determinism for a fixed seed), the
//! [`SeedableRng`]/[`RngCore`]/[`Rng`] traits, and uniform range sampling.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly "at standard" from an RNG
/// (the shim's stand-in for `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::standard_sample(rng) * (end - start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::standard_sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly "at standard".
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples a value uniformly from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the RNG from OS entropy; the shim derives it from the clock.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// A clock-seeded RNG, for API compatibility with `rand::thread_rng`.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Samples one value of type `T` from a clock-seeded RNG.
pub fn random<T: StandardSample>() -> T {
    T::standard_sample(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f64_is_in_unit_interval_and_centred() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3..10usize);
            assert!((3..10).contains(&i));
            let f = rng.gen_range(0.5..0.9f64);
            assert!((0.5..0.9).contains(&f));
            let k = rng.gen_range(1..=10i32);
            assert!((1..=10).contains(&k));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
