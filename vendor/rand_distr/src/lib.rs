//! Offline shim for the subset of the `rand_distr` 0.4 API used by this
//! workspace: the [`Distribution`] trait and the [`Normal`] distribution
//! (sampled via Box–Muller).

use rand::{Rng, RngCore};

/// A probability distribution that can be sampled with any RNG.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was not finite.
    MeanTooSmall,
    /// The standard deviation was negative or not finite.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean is not finite"),
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution, validating the parameters.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution's standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; one fresh pair per sample keeps the
        // distribution independent of call parity.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn sample_moments_match_parameters() {
        let normal = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }
}
