//! Offline shim for the subset of the `parking_lot` API used by this
//! workspace: [`Mutex`] and [`RwLock`] with non-poisoning guards, backed by
//! the `std::sync` primitives.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
