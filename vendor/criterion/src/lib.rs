//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Statistical analysis is replaced by a simple warm-up + timed-samples loop
//! that prints the mean, min, and max iteration time per benchmark. Good
//! enough to compare implementations by eye; not a statistics engine.
//!
//! Like real criterion, the harness honours `--test` on the bench binary's
//! command line (`cargo bench -- --test`): every benchmark routine runs
//! exactly once, with no warm-up and no sampling, so CI can smoke-test that
//! all bench code still compiles and executes in seconds instead of minutes.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
            // Matches real criterion's `--test` flag: run everything once,
            // measure nothing. Detected here so every `criterion_group!`
            // config — they all build on `Criterion::default()` — inherits
            // it without per-bench plumbing.
            test_mode: std::env::args().any(|arg| arg == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the time budget for measurement sampling.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut bencher = Bencher::new(
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            self.test_mode,
        );
        f(&mut bencher);
        bencher.report(&id);
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
        );
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
        );
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(
        warm_up_time: Duration,
        measurement_time: Duration,
        sample_size: usize,
        test_mode: bool,
    ) -> Self {
        Bencher {
            warm_up_time,
            measurement_time,
            sample_size,
            test_mode,
            samples: Vec::new(),
        }
    }

    /// Times repeated runs of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            // `--test`: execute the routine exactly once — proves the bench
            // code runs without paying for warm-up or sampling.
            let t = Instant::now();
            black_box(routine());
            self.samples.clear();
            self.samples.push(t.elapsed());
            return;
        }
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: `sample_size` samples or until the time budget runs out.
        let measure_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            eprintln!("  {label}: no samples collected");
            return;
        }
        if self.test_mode {
            eprintln!("  {label}: ok (test mode, ran once)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        eprintln!(
            "  {label}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3)
    }

    #[test]
    fn group_benchmarks_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let input = 10u64;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }

    #[test]
    fn test_mode_runs_the_routine_exactly_once() {
        let mut bencher = Bencher::new(
            Duration::from_secs(3600),
            Duration::from_secs(3600),
            1000,
            true,
        );
        let mut runs = 0u32;
        bencher.iter(|| runs += 1);
        assert_eq!(runs, 1, "test mode must skip warm-up and sampling");
        assert_eq!(bencher.samples.len(), 1);
        bencher.report("shim/test-mode");
    }
}
